"""Acknowledged delivery with retransmission for control-plane messages.

The simulated fabric can now lose, delay, and duplicate messages
(:mod:`repro.sim.faults`), so the middleware's critical control-plane
traffic — MBR publishes, similarity / inner-product subscribes, stream
registrations, and window requests — gets a thin reliability layer:

* every reliably-sent payload carries a globally unique ``delivery_id``
  (:func:`repro.core.protocol.next_delivery_id`);
* the receiver acknowledges it (or, for request/reply exchanges, the
  reply itself settles the exchange);
* the sender arms a retransmission timer with capped exponential
  backoff plus uniform jitter; expiry re-sends the *same payload* (same
  delivery id, so receivers can deduplicate) in a fresh overlay message;
* after ``retry_max`` unacknowledged attempts the payload lands in the
  dead-letter counter instead of vanishing silently.

The whole layer is a no-op when ``MiddlewareConfig.reliable_delivery``
is off (the paper's lossless fabric), so the reproduced figures carry no
ack traffic.  Timer jitter draws from a per-node named RNG substream, so
runs stay deterministic under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..net.transport import TransportHandle

__all__ = ["ReliableSender"]


@dataclass
class _Pending:
    """One in-flight reliably-sent payload awaiting its ack."""

    delivery_id: int
    kind: str
    resend: Callable[[], None]
    on_give_up: Optional[Callable[[], None]] = None
    attempts: int = 0
    handle: Optional[TransportHandle] = field(default=None, repr=False)
    #: the stats epoch the send was recorded under; every later event of
    #: this exchange (retry, ack, dead letter, cancel) is charged to the
    #: same epoch so ratios stay consistent across ``reset_stats()``
    stats: object = field(default=None, repr=False)


class ReliableSender:
    """Per-node retransmission state machine.

    Owned by one :class:`~repro.core.middleware.StreamIndexNode`;
    reads its timeout/backoff knobs from the shared
    :class:`~repro.core.config.MiddlewareConfig`.
    """

    def __init__(self, app) -> None:
        self.app = app
        self._pending: Dict[int, _Pending] = {}
        self._rng = None  # lazy: named substream keyed by node id

    # ------------------------------------------------------------------
    @property
    def _cfg(self):
        return self.app.cfg

    @property
    def _transport(self):
        return self.app.transport

    @property
    def _stats(self):
        return self.app.transport.stats

    @property
    def pending_count(self) -> int:
        """Number of payloads still awaiting acknowledgement."""
        return len(self._pending)

    def _jitter(self) -> float:
        if self._cfg.retry_jitter_ms <= 0:
            return 0.0
        if self._rng is None:
            self._rng = self.app.system.rngs.get(f"retry/{self.app.node_id}")
        return float(self._rng.uniform(0.0, self._cfg.retry_jitter_ms))

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def track(
        self,
        payload,
        kind: str,
        resend: Callable[[], None],
        on_give_up: Optional[Callable[[], None]] = None,
    ) -> None:
        """Arm retransmission for a just-sent payload.

        ``resend`` must re-route the *same payload object* (preserving
        its delivery id) in a fresh overlay message.  ``on_give_up``
        fires once if the retry budget is exhausted.  No-op unless
        reliable delivery is enabled and the payload carries an id.
        """
        if not self._cfg.reliable_delivery:
            return
        delivery_id = getattr(payload, "delivery_id", -1)
        if delivery_id < 0:
            return
        self._stats.record_reliable_send(kind)
        pending = _Pending(
            delivery_id=delivery_id,
            kind=kind,
            resend=resend,
            on_give_up=on_give_up,
            stats=self._stats,
        )
        self._pending[delivery_id] = pending
        self._arm(pending)

    def _arm(self, pending: _Pending) -> None:
        timeout = (
            self._cfg.ack_timeout_ms * self._cfg.retry_backoff ** pending.attempts
            + self._jitter()
        )
        pending.handle = self._transport.schedule(
            timeout, self._on_timeout, pending.delivery_id
        )

    def _on_timeout(self, delivery_id: int) -> None:
        pending = self._pending.get(delivery_id)
        if pending is None:
            return
        if not self.app.node.alive:
            # this data center crashed with acks outstanding; a dead
            # node must not keep retransmitting from beyond the grave
            self.cancel_all()
            return
        if pending.attempts >= self._cfg.retry_max:
            del self._pending[delivery_id]
            pending.stats.record_dead_letter(pending.kind)
            if pending.on_give_up is not None:
                pending.on_give_up()
            return
        pending.attempts += 1
        pending.stats.record_retransmission(pending.kind)
        pending.resend()
        self._arm(pending)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def on_ack(self, delivery_id: int) -> None:
        """An :class:`~repro.core.protocol.Ack` quoting this id arrived."""
        self._settle(delivery_id)

    def settle(self, delivery_id: int) -> None:
        """Complete an exchange by its reply rather than an explicit ack.

        Window fetches use this: the :class:`WindowReply` proves the
        request got through, so no separate ack message is needed.
        """
        self._settle(delivery_id)

    def _settle(self, delivery_id: int) -> None:
        pending = self._pending.pop(delivery_id, None)
        if pending is None:
            return  # duplicate ack, or ack after give-up: ignore
        if pending.handle is not None:
            pending.handle.cancel()
        pending.stats.record_reliable_ack(pending.kind)

    def cancel_all(self) -> None:
        """Drop all pending retransmissions (node crash / teardown).

        Cancelled sends are counted separately from dead letters: the
        sender is gone, so nobody is waiting for the outcome, and they
        must not depress the eventual-delivery ratio.
        """
        for pending in self._pending.values():
            if pending.handle is not None:
                pending.handle.cancel()
            pending.stats.record_reliable_cancelled(pending.kind)
        self._pending.clear()
