"""Hierarchical feature-space partitioning for wide queries (Sec. VI-B).

The flat scheme replicates a similarity query across *every* node whose
arc intersects ``[h(q1-ε), h(q1+ε)]`` — linear in N for a fixed radius,
and close to the whole ring for large radii.  Sec. VI-B proposes a
cluster hierarchy, NICE-style: adjacent data centers (adjacent = ring
order = feature order under the Eq. 6 mapping) form constant-size
bottom clusters; each elects a leader; leaders cluster recursively up
to a single root.  A leader at level ℓ covers the feature interval of
its whole subtree (~``c^ℓ`` arcs), so a query whose interest volume
exceeds one node's arc climbs the leader chain — O(log_c N) contacts —
instead of being replicated across the range.

Updates flow the other way: each summary is forwarded up the chain, and
— per the section's final refinement — every level widens its stored
MBR by a growing margin, so upward updates are *suppressed* whenever
the new summary still fits the widened box ("nodes at the upper levels
of the hierarchy need to be updated less frequently at the expense of
having less precise information").

This module is self-contained (it does not interact with the flat
middleware's message flow) so the hierarchy bench can compare the two
schemes on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.network import Message, Network
from .mbr import MBR
from .protocol import KIND

__all__ = ["Cluster", "ClusterHierarchy", "HierarchicalIndex"]

#: message kinds of the hierarchy traffic (kept distinct from the flat
#: middleware's so combined experiments remain separable; declared in
#: the :mod:`repro.core.protocol` registry like every other kind)
H_UPDATE = KIND.HIER_UPDATE
H_QUERY = KIND.HIER_QUERY
H_RESPONSE = KIND.HIER_RESPONSE


@dataclass
class Cluster:
    """One cluster at some level: member ids and the elected leader.

    ``lo_idx`` / ``hi_idx`` delimit (half-open) the *positions* — in the
    ring/feature order the hierarchy was built over — of the bottom
    nodes this cluster's subtree covers.  Under the Eq. 6 mapping,
    positions are monotone in feature value, so a cluster covers a
    contiguous feature interval.
    """

    level: int
    members: List[int]
    leader: int
    lo_idx: int = 0
    hi_idx: int = 0


class ClusterHierarchy:
    """The NICE-style leader hierarchy over a list of node identifiers.

    Nodes must be supplied in ring (= feature) order; consecutive runs
    of ``cluster_size`` nodes form the bottom clusters, and the first
    member of each cluster serves as its leader (any deterministic
    choice works; real deployments would elect by capacity).
    """

    def __init__(self, node_ids: List[int], cluster_size: int = 4) -> None:
        if cluster_size < 2:
            raise ValueError("cluster_size must be >= 2")
        if not node_ids:
            raise ValueError("need at least one node")
        self.cluster_size = cluster_size
        self.node_ids = list(node_ids)
        self.position = {nid: i for i, nid in enumerate(self.node_ids)}
        self.levels: List[List[Cluster]] = []
        current = list(node_ids)
        # positional coverage of each entry in `current` (half-open)
        spans = [(i, i + 1) for i in range(len(current))]
        level = 0
        while len(current) > 1:
            clusters = []
            for i in range(0, len(current), cluster_size):
                members = current[i : i + cluster_size]
                member_spans = spans[i : i + cluster_size]
                clusters.append(
                    Cluster(
                        level=level,
                        members=members,
                        leader=members[0],
                        lo_idx=member_spans[0][0],
                        hi_idx=member_spans[-1][1],
                    )
                )
            self.levels.append(clusters)
            current = [c.leader for c in clusters]
            spans = [(c.lo_idx, c.hi_idx) for c in clusters]
            level += 1
        self.root = current[0]
        # node -> its cluster per level (leaders appear at several levels)
        self._cluster_of: List[Dict[int, Cluster]] = []
        for clusters in self.levels:
            m: Dict[int, Cluster] = {}
            for c in clusters:
                for member in c.members:
                    m[member] = c
            self._cluster_of.append(m)

    @property
    def depth(self) -> int:
        """Number of cluster levels (0 for a single-node system)."""
        return len(self.levels)

    def cluster_of(self, node_id: int, level: int) -> Optional[Cluster]:
        """The cluster containing ``node_id`` at ``level`` (None if absent)."""
        if level >= len(self._cluster_of):
            return None
        return self._cluster_of[level].get(node_id)

    def leader_chain(self, node_id: int) -> List[int]:
        """Leaders from the node's bottom cluster up to the root (deduped)."""
        chain: List[int] = []
        current = node_id
        for level in range(self.depth):
            cluster = self.cluster_of(current, level)
            if cluster is None:
                break
            if cluster.leader != current or not chain:
                if not chain or chain[-1] != cluster.leader:
                    chain.append(cluster.leader)
            current = cluster.leader
        if not chain:
            chain = [node_id]
        return chain

    def subtree_size(self, level: int) -> int:
        """Approximate number of bottom nodes a level-``level`` leader covers."""
        return self.cluster_size ** (level + 1)

    def level_for_coverage(self, fraction: float) -> int:
        """The smallest level whose subtree covers ``fraction`` of all nodes.

        A query whose key range would span ``fraction * N`` nodes in the
        flat scheme is served by this level's leader instead.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        needed = fraction * len(self.node_ids)
        for level in range(self.depth):
            if self.subtree_size(level) >= needed:
                return level
        return max(0, self.depth - 1)

    def covering_chain(self, start_node: int, lo_idx: int, hi_idx: int) -> List[int]:
        """Leaders to visit, in order, until one covers positions
        ``[lo_idx, hi_idx)``.

        Empty when ``start_node`` itself covers the range.  The climb is
        correct from *any* start node (worst case it reaches the root,
        which covers everything); it is cheapest when the start node is
        the owner of the query's center key, which is where the flat
        layer content-routes the query.
        """
        pos = self.position[start_node]
        if lo_idx >= pos and hi_idx <= pos + 1:
            return []
        chain: List[int] = []
        current = start_node
        for level in range(self.depth):
            cluster = self.cluster_of(current, level)
            if cluster is None:
                break
            if cluster.leader != current:
                chain.append(cluster.leader)
            current = cluster.leader
            if cluster.lo_idx <= lo_idx and cluster.hi_idx >= hi_idx:
                break
        return chain


@dataclass
class _LevelEntry:
    """A stream's widened MBR stored at one hierarchy node."""

    box: MBR
    margin: float
    updates_received: int = 0
    updates_forwarded: int = 0
    expires: float = float("inf")


@dataclass
class HierarchyStats:
    """Counters of the hierarchy's own traffic."""

    updates_sent: int = 0
    updates_suppressed: int = 0
    queries_sent: int = 0
    responses_sent: int = 0


class HierarchicalIndex:
    """The Sec. VI-B scheme: update suppression up the chain, query climb.

    Parameters
    ----------
    network:
        The simulated network (for hop latency and message accounting).
    hierarchy:
        The cluster structure.
    base_margin:
        Widening margin per dimension at level 0; level ℓ uses
        ``base_margin * growth**ℓ``.
    growth:
        Per-level margin growth factor (> 1 to realise "less frequent
        updates at upper levels").
    """

    def __init__(
        self,
        network: Network,
        hierarchy: ClusterHierarchy,
        *,
        base_margin: float = 0.01,
        growth: float = 2.0,
        value_bounds: Tuple[float, float] = (-1.0, 1.0),
    ) -> None:
        if base_margin < 0 or growth < 1.0:
            raise ValueError("need base_margin >= 0 and growth >= 1")
        if value_bounds[1] <= value_bounds[0]:
            raise ValueError("need value_bounds[1] > value_bounds[0]")
        self.value_bounds = (float(value_bounds[0]), float(value_bounds[1]))
        self.network = network
        self.hierarchy = hierarchy
        self.base_margin = base_margin
        self.growth = growth
        #: per node: (stream_id, level) -> stored widened entry.  A
        #: leader keeps one entry per level it serves, so suppression
        #: decisions at different levels are independent.
        self.store: Dict[int, Dict[Tuple[str, int], _LevelEntry]] = {
            n: {} for n in hierarchy.node_ids
        }
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def publish(self, node_id: int, mbr: MBR, *, expires: float = float("inf")) -> None:
        """A summary arrives at its content-placed node; push up the chain.

        At each level the update is forwarded only if the summary no
        longer fits the widened box previously advertised there — the
        suppression that makes upper levels cheap.  ``expires`` bounds
        the entry's lifetime (the flat layer's BSPAN); a fitting update
        still *extends* the expiry, so live streams never fade out.
        """
        self._store_and_maybe_forward(node_id, mbr, level=0, expires=expires)

    def _store_and_maybe_forward(
        self, node_id: int, mbr: MBR, level: int, expires: float
    ) -> None:
        key = (mbr.stream_id, level)
        entry = self.store[node_id].get(key)
        fits = (
            entry is not None
            and bool((mbr.low >= entry.box.low - 1e-12).all())
            and bool((mbr.high <= entry.box.high + 1e-12).all())
        )
        if fits:
            entry.updates_received += 1
            entry.expires = max(entry.expires, expires)
            self.stats.updates_suppressed += 1
            return
        margin = self.base_margin * (self.growth ** level)
        widened = MBR(
            low=mbr.low - margin,
            high=mbr.high + margin,
            stream_id=mbr.stream_id,
            count=mbr.count,
            created=mbr.created,
        )
        new_entry = _LevelEntry(box=widened, margin=margin, expires=expires)
        if entry is not None:
            new_entry.updates_received = entry.updates_received
            new_entry.updates_forwarded = entry.updates_forwarded
        new_entry.updates_received += 1
        new_entry.updates_forwarded += 1
        self.store[node_id][key] = new_entry
        self._forward_up(node_id, mbr, level, expires)

    def _forward_up(self, node_id: int, mbr: MBR, level: int, expires: float) -> None:
        cluster = self.hierarchy.cluster_of(node_id, level)
        if cluster is None:
            return
        if cluster.leader == node_id:
            if level + 1 >= self.hierarchy.depth:
                return  # at the root: nowhere further up
            # already the leader at this level; continue at the next one
            self._store_and_maybe_forward(node_id, mbr, level + 1, expires)
            return
        self.stats.updates_sent += 1
        msg = Message(
            kind=H_UPDATE, payload=(mbr, level), origin=node_id, dest_key=cluster.leader
        )
        # leader-chain control traffic is the hierarchy's own substrate,
        # outside the reliable/dispatch path
        self.network.hop(  # simlint: disable=D010 (hierarchy substrate)
            node_id,
            cluster.leader,
            msg,
            lambda m, leader=cluster.leader, lv=level: self._store_and_maybe_forward(
                leader, m.payload[0], lv + 1, expires
            ),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def positions_of_interval(self, lo_val: float, hi_val: float) -> Tuple[int, int]:
        """Half-open position range of a routing-value interval.

        Assumes node positions are monotone in feature value over
        ``value_bounds`` — which the Eq. 6 mapping guarantees when the
        hierarchy is built in ring order.
        """
        vmin, vmax = self.value_bounds
        n = len(self.hierarchy.node_ids)
        span = vmax - vmin

        def pos(v: float) -> int:
            frac = (min(max(v, vmin), vmax) - vmin) / span
            return min(n - 1, int(frac * n))

        return pos(lo_val), pos(hi_val) + 1

    def query(
        self,
        node_id: int,
        feature: np.ndarray,
        radius: float,
        on_answer,
        *,
        position_range: Optional[Tuple[int, int]] = None,
    ) -> int:
        """Resolve a similarity probe through the hierarchy.

        The query climbs the leader chain from ``node_id`` until it
        reaches a leader whose subtree's feature interval covers
        ``[q1 - ε, q1 + ε]``, is answered from the widened index there,
        and the candidate list flows back to the caller via
        ``on_answer(matches)``.  Returns the number of *contacts*
        (distinct nodes the query visits) — the quantity the hierarchy
        bench compares against the flat scheme's range size.

        For the logarithmic cost to pay off, ``node_id`` should be the
        owner of the query's center key (where the flat layer routes
        queries anyway); starting elsewhere stays correct but climbs to
        the root.
        """
        feature = np.asarray(feature, dtype=np.float64)
        if position_range is not None:
            # exact positions supplied by the caller (e.g. computed from
            # the ring's actual key ownership)
            lo_idx, hi_idx = position_range
        else:
            lo_idx, hi_idx = self.positions_of_interval(
                float(feature[0]) - radius, float(feature[0]) + radius
            )
        path = self.hierarchy.covering_chain(node_id, lo_idx, hi_idx)

        def respond(at_node: int, hops_taken: List[int]) -> None:
            matches = self._scan(at_node, feature, radius)
            if at_node == node_id:
                on_answer(matches)
                return
            self.stats.responses_sent += 1
            rmsg = Message(
                kind=H_RESPONSE, payload=matches, origin=at_node, dest_key=node_id
            )
            self.network.hop(  # simlint: disable=D010 (hierarchy substrate)
                at_node, node_id, rmsg, lambda m: on_answer(m.payload)
            )

        def climb(idx: int, at_node: int) -> None:
            if idx >= len(path):
                respond(at_node, [])
                return
            nxt = path[idx]
            self.stats.queries_sent += 1
            qmsg = Message(kind=H_QUERY, payload=None, origin=at_node, dest_key=nxt)
            self.network.hop(  # simlint: disable=D010 (hierarchy substrate)
                at_node, nxt, qmsg, lambda m: climb(idx + 1, nxt)
            )

        climb(0, node_id)
        return len(path) + 1  # contacts: the client itself plus each leader hop

    def _scan(self, node_id: int, feature: np.ndarray, radius: float) -> List[Tuple[str, float]]:
        now = self.network.sim.now
        best: Dict[str, float] = {}
        for (stream_id, _level), entry in self.store[node_id].items():
            if entry.expires <= now:
                continue
            d = entry.box.mindist(feature)
            if d <= radius and (stream_id not in best or d < best[stream_id]):
                best[stream_id] = float(d)
        return sorted(best.items())

    def purge(self, node_id: int, now: Optional[float] = None) -> int:
        """Drop expired entries at one node; returns how many went."""
        if now is None:
            now = self.network.sim.now
        store = self.store[node_id]
        dead = [k for k, e in store.items() if e.expires <= now]
        for k in dead:
            del store[k]
        return len(dead)

    def streams_known(self, node_id: int) -> List[str]:
        """Distinct stream ids this node holds entries for (any level)."""
        return sorted({sid for (sid, _lv) in self.store[node_id]})
