"""Configuration: the paper's Table I workload plus middleware knobs.

Table I of the paper fixes the workload and runtime parameters used in
every experiment:

====== ======= =====================================================
name   value   meaning
====== ======= =====================================================
PMIN   150 ms  minimum stream period (per-stream, uniform)
PMAX   250 ms  maximum stream period
BSPAN  5000 ms lifespan of a stored MBR
QRATE  2 q/s   Poisson arrival rate of queries (system-wide)
QMIN   20 s    minimum query lifespan (uniform)
QMAX   100 s   maximum query lifespan
NPER   2 s     period of notification / response exchanges
====== ======= =====================================================

plus a constant 50 ms per-hop routing delay in the Chord simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["WorkloadConfig", "MiddlewareConfig", "TABLE_I"]


@dataclass(frozen=True)
class WorkloadConfig:
    """The paper's Table I parameters (all times in ms unless noted)."""

    pmin_ms: float = 150.0
    pmax_ms: float = 250.0
    bspan_ms: float = 5000.0
    qrate_per_s: float = 2.0
    qmin_ms: float = 20_000.0
    qmax_ms: float = 100_000.0
    nper_ms: float = 2_000.0

    def __post_init__(self) -> None:
        if self.pmin_ms <= 0 or self.pmax_ms < self.pmin_ms:
            raise ValueError("need 0 < PMIN <= PMAX")
        if self.qmin_ms <= 0 or self.qmax_ms < self.qmin_ms:
            raise ValueError("need 0 < QMIN <= QMAX")
        if self.bspan_ms <= 0 or self.nper_ms <= 0 or self.qrate_per_s < 0:
            raise ValueError("BSPAN, NPER must be positive; QRATE non-negative")

    def as_table(self) -> Tuple[Tuple[str, str], ...]:
        """The (name, value) rows of Table I, formatted as in the paper."""
        return (
            ("PMIN", f"{self.pmin_ms:.0f}ms"),
            ("PMAX", f"{self.pmax_ms:.0f}ms"),
            ("BSPAN", f"{self.bspan_ms:.0f}ms"),
            ("QRATE", f"{self.qrate_per_s:.0f}q/sec"),
            ("QMIN", f"{self.qmin_ms / 1000:.0f}sec"),
            ("QMAX", f"{self.qmax_ms / 1000:.0f}sec"),
            ("NPER", f"{self.nper_ms / 1000:.0f}sec"),
        )


TABLE_I = WorkloadConfig()
"""The exact parameter set of the paper's Table I."""


@dataclass(frozen=True)
class MiddlewareConfig:
    """Knobs of the distributed indexing middleware itself.

    Attributes
    ----------
    m:
        Chord identifier bits.
    window_size:
        Sliding window length ``n`` per stream.
    k:
        Non-DC DFT coefficients kept per summary.
    normalization:
        ``"z"`` (correlation semantics), ``"unit"`` (subsequence), or
        ``"none"``.
    batch_size:
        ``w``: feature vectors grouped into one MBR before routing
        (Sec. IV-G).
    query_radius:
        Default similarity-query radius ε (the paper uses 0.1 for most
        experiments, 0.2 in Fig. 7(b)).
    multicast:
        ``"sequential"`` — send to the low key and forward via
        successors (the basic scheme every DHT supports); or
        ``"bidirectional"`` — send to the middle key and spread both
        ways (the Sec. IV-C/VI extension that halves propagation delay).
    hop_delay_ms:
        Constant per-hop routing latency.
    report_empty:
        Whether range nodes send periodic similarity reports even when
        they found no candidates (heartbeat semantics).
    successor_list_len:
        Chord successor-list length (fault tolerance).
    adaptive_mbr:
        Use the Sec. VI-A adaptive precision batcher instead of plain
        count batching.
    adaptive_target_span / adaptive_initial_width:
        Target node span and initial routing-coordinate width cap for
        the adaptive batcher.
    hierarchy:
        Enable the Sec. VI-B cluster hierarchy: queries with radius
        above ``hierarchy_radius_threshold`` are served as one-shot
        probes via a leader climb (O(log N) contacts) instead of being
        replicated across the key range.
    hierarchy_cluster_size / hierarchy_margin:
        Bottom-cluster size and level-0 widening margin of the
        hierarchy's update-suppression scheme.
    reliable_delivery:
        Acknowledge critical control-plane messages (MBR publishes,
        subscribes, registrations, window requests) and retransmit on
        timeout.  Off by default: the paper's fabric is lossless, so
        acks would only add traffic to the reproduced figures.
    ack_timeout_ms:
        Base retransmission timeout; doubled (``retry_backoff``) per
        attempt with up to ``retry_jitter_ms`` of uniform jitter.
    retry_max:
        Retry budget; messages still unacknowledged after it land in
        the dead-letter counter.
    retry_backoff / retry_jitter_ms:
        Exponential-backoff multiplier and jitter bound.
    refresh_period_ms:
        Soft-state healing period: sources periodically re-register
        streams, re-publish their freshest unexpired MBR, and clients
        re-disseminate live subscriptions.  0 disables refresh.
    replication_factor:
        ``r``: number of copies of every stored MBR, counting the
        primary (DESIGN.md §10).  The last index holder of a publish
        span pushes ``r - 1`` replicas onto its successor list, and
        stabilization rounds run anti-entropy / hinted-handoff repair.
        The default of 1 keeps replication fully inert — byte-identical
        behaviour to a build without the subsystem.
    consistency:
        Query read mode: ``"eventual"`` (first answer wins — the
        paper's semantics) or ``"quorum"`` (a match is released only
        once ``ceil((r + 1) / 2)`` replica holders report the same
        version of the stream's MBR; stale reporters get read-repaired).
    dedup_seen_limit:
        Per-node bound on remembered delivery ids for receive-side
        duplicate suppression (FIFO eviction once full).  Sized so ids
        outlive the retry window: an id evicted while its sender still
        retransmits would let a duplicate through as a fresh delivery.
    loss_rate / duplicate_rate / delay_jitter_ms:
        Convenience fault knobs: when any is non-zero (and no explicit
        :class:`~repro.sim.faults.FaultPlan` is given to the system) the
        network drops / duplicates each hop with these probabilities and
        jitters the hop delay by ``± delay_jitter_ms``.
    scheduler:
        Event-queue backend of the simulation engine: ``"heap"`` (binary
        heap, the differential-testing oracle) or ``"calendar"``
        (bucketed calendar queue).  Both produce the identical event
        order, so results never depend on this knob — only wall-clock
        does (see PERFORMANCE.md).
    virtual_nodes:
        ``v``: ring identifiers (tokens) owned by every physical data
        center (DESIGN.md §13).  Each token is a full Chord node with
        its own successor/finger state, so a physical node's share of
        the key circle is the union of ``v`` independent arcs — the
        classic virtual-node answer to hash-placement skew.  The
        default of 1 keeps the subsystem fully inert: node ids, event
        order and stats stay byte-identical to a build without it.
    adaptive_mapping:
        Enable the §13 online quantile re-fitter: index holders report
        key-density histograms on stabilization rounds and the system
        periodically re-fits the value→key mapping to equalize observed
        key mass, bumping an epoch counter so in-flight routes resolve
        against the mapping they were issued under.  Hot placements are
        then migrated off overloaded holders via ``MbrMigrate``.
    adaptive_refit_interval_rounds / adaptive_histogram_bins:
        Stabilization rounds between re-fits, and resolution of the
        per-holder key-density histograms feeding them.
    admission_control:
        Enable per-holder token-bucket admission control: MBR publishes
        beyond the bucket rate are shed (``LoadShed`` back to the
        source, which re-publishes after a throttle interval) and a
        rate-limited ``Backpressure`` advisory slows the source's
        publish cadence.  Reliability is unaffected — sheds happen
        after the delivery ack, so ``eventual_delivery_ratio`` stays 1.
    admission_rate_per_s / admission_burst:
        Token-bucket refill rate (MBR publishes per second a holder
        accepts sustained) and bucket depth (burst tolerance).
    stabilize_cohorts:
        ``0`` (default): one stabilization timer per node, the
        historical layout every pinned digest was produced under.
        ``C > 0``: maintenance runs in ``C`` shared round-robin cohort
        timers (``node_id % C``), each node still maintained once per
        period — the batching that keeps the scheduler's timer
        population O(C) instead of O(N) at large rings (PERFORMANCE.md
        §11).
    workload:
        The Table I parameters.
    """

    m: int = 32
    window_size: int = 128
    k: int = 2
    normalization: str = "z"
    batch_size: int = 10
    query_radius: float = 0.1
    multicast: str = "sequential"
    hop_delay_ms: float = 50.0
    report_empty: bool = False
    successor_list_len: int = 4
    adaptive_mbr: bool = False
    adaptive_target_span: float = 2.0
    adaptive_initial_width: float = 0.05
    hierarchy: bool = False
    hierarchy_cluster_size: int = 4
    hierarchy_radius_threshold: float = 0.25
    hierarchy_margin: float = 0.02
    reliable_delivery: bool = False
    ack_timeout_ms: float = 400.0
    retry_max: int = 5
    retry_backoff: float = 2.0
    retry_jitter_ms: float = 40.0
    refresh_period_ms: float = 0.0
    replication_factor: int = 1
    consistency: str = "eventual"
    dedup_seen_limit: int = 8192
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_jitter_ms: float = 0.0
    scheduler: str = "heap"
    virtual_nodes: int = 1
    adaptive_mapping: bool = False
    adaptive_refit_interval_rounds: int = 8
    adaptive_histogram_bins: int = 64
    admission_control: bool = False
    admission_rate_per_s: float = 20.0
    admission_burst: float = 10.0
    stabilize_cohorts: int = 0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.multicast not in ("sequential", "bidirectional"):
            raise ValueError(f"unknown multicast strategy {self.multicast!r}")
        if self.normalization not in ("z", "unit", "none"):
            raise ValueError(f"unknown normalization {self.normalization!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not (0.0 < self.query_radius <= 2.0):
            raise ValueError("query_radius must be in (0, 2]")
        if not (1 <= self.k < self.window_size):
            raise ValueError("need 1 <= k < window_size")
        if self.hierarchy_cluster_size < 2:
            raise ValueError("hierarchy_cluster_size must be >= 2")
        if not (0.0 < self.hierarchy_radius_threshold <= 2.0):
            raise ValueError("hierarchy_radius_threshold must be in (0, 2]")
        if self.hierarchy_margin < 0:
            raise ValueError("hierarchy_margin must be non-negative")
        if self.ack_timeout_ms <= 0:
            raise ValueError("ack_timeout_ms must be positive")
        if self.retry_max < 0:
            raise ValueError("retry_max must be non-negative")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.retry_jitter_ms < 0:
            raise ValueError("retry_jitter_ms must be non-negative")
        if self.refresh_period_ms < 0:
            raise ValueError("refresh_period_ms must be non-negative")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.consistency not in ("eventual", "quorum"):
            raise ValueError(f"unknown consistency mode {self.consistency!r}")
        if self.dedup_seen_limit < 1:
            raise ValueError("dedup_seen_limit must be >= 1")
        for name, rate in (("loss_rate", self.loss_rate),
                           ("duplicate_rate", self.duplicate_rate)):
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1)")
        if self.delay_jitter_ms < 0:
            raise ValueError("delay_jitter_ms must be non-negative")
        if self.scheduler not in ("heap", "calendar"):
            raise ValueError(f"unknown scheduler backend {self.scheduler!r}")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.adaptive_refit_interval_rounds < 1:
            raise ValueError("adaptive_refit_interval_rounds must be >= 1")
        if self.adaptive_histogram_bins < 2:
            raise ValueError("adaptive_histogram_bins must be >= 2")
        if self.admission_rate_per_s <= 0:
            raise ValueError("admission_rate_per_s must be positive")
        if self.admission_burst < 1:
            raise ValueError("admission_burst must be >= 1")
        if self.stabilize_cohorts < 0:
            raise ValueError("stabilize_cohorts must be >= 0")

    @property
    def duplicates_possible(self) -> bool:
        """Whether any mechanism can deliver one logical payload twice.

        Receive-side dedup (``NodeRuntime._note_delivery``) only has
        work to do when some path can replay a ``(origin, delivery_id)``
        pair at the same node: network duplicate injection, reliable
        retransmission after loss, multi-token span ownership (virtual
        nodes), or replica re-pushes.  With every one of those off, the
        seen-set can never hit and tracking it is pure memory overhead
        — at N = 5000 it was tens of MB of tuples that could never
        match (PERFORMANCE.md §11).
        """
        return (
            self.reliable_delivery
            or self.loss_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.virtual_nodes > 1
            or self.replication_factor > 1
        )

    def with_(self, **changes) -> "MiddlewareConfig":
        """A modified copy (convenience over :func:`dataclasses.replace`)."""
        return replace(self, **changes)
