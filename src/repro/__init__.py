"""repro: distributed data-stream indexing over content-based routing.

Reproduction of Bulut, Vitenberg & Singh, "Distributed Data Streams
Indexing using Content-based Routing Paradigm" (IPDPS 2005).

The most common entry points are re-exported here::

    from repro import StreamIndexSystem, SimilarityQuery, MiddlewareConfig

Sub-packages:

* :mod:`repro.sim` — discrete-event simulator and message network
* :mod:`repro.chord` — the Chord DHT substrate
* :mod:`repro.streams` — windows, DFT/wavelet synopses, generators
* :mod:`repro.core` — the paper's indexing middleware and extensions
* :mod:`repro.baselines` — centralized / flooding strawmen
* :mod:`repro.workload` — Table I workloads, query and churn generators
* :mod:`repro.bench` — sweep harness and reporting
"""

from .core.config import TABLE_I, MiddlewareConfig, WorkloadConfig
from .core.queries import (
    InnerProductQuery,
    SimilarityQuery,
    correlation_query,
    point_query,
    range_query,
)
from .core.system import StreamIndexSystem

__version__ = "1.0.0"

__all__ = [
    "TABLE_I",
    "MiddlewareConfig",
    "WorkloadConfig",
    "InnerProductQuery",
    "SimilarityQuery",
    "correlation_query",
    "point_query",
    "range_query",
    "StreamIndexSystem",
    "__version__",
]
