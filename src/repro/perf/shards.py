"""Sharded ring simulation: one scenario, many worker processes.

The parallel sweep runner (:mod:`repro.perf.parallel`) parallelises
*across* scenario cells; this module parallelises *within* one cell by
partitioning the Chord ring across ``K`` forked workers.  The design is
conservative parallel discrete-event simulation with a fixed lookahead:

* Every worker builds the **full deterministic replica** of the system
  (same seed, same RNG draw order) but *executes* only the nodes whose
  ring-order index hashes to its shard (``index % K``).  Periodic duties
  of non-owned nodes are cancelled via
  :meth:`repro.core.system.StreamIndexSystem.restrict_to`; originations
  (stream registration, MBR publishes, query posts) are gated at the
  service layer by ``system.executes(node_id)``.  RNG substreams still
  advance in lockstep on every replica, so all shards agree bit-for-bit
  on what every node *would* do.

* Cross-shard sends are not scheduled locally: the network's
  :class:`~repro.sim.network.ShardPartition` seam exports them (already
  stamped with their delivery time).  Because every physical hop costs
  at least ``hop_delay_ms``, the coordinator can run all workers to a
  time barrier every ``hop_delay_ms`` of simulated time, then merge the
  exported messages in exact ``(deliver_time, shard, seq)`` total order
  and hand each to its owner for the next window — no export can ever
  arrive inside the window that produced it (the lookahead guarantee).

* Message accounting merges exactly: integer counters are
  order-independent sums; the float hop/latency accumulator tables are
  **replayed** from per-shard delivery logs in merged time order, so
  the sharded run reproduces the single-process stats CSV byte for
  byte.  ``--check`` re-runs the scenario serially in-process and
  compares the two CSVs, the same contract ``repro sweep --check``
  enforces for the parallel sweep.

Envelope: sharding (K > 1) requires a loss/duplication/jitter-free
network (the fault injector rewrites delays, breaking the lookahead
bound) and no cluster hierarchy (its send continuations are not
exportable).  The ``lossy_seed11`` scenario therefore always runs at
K = 1, where the windowed run is trivially identical to the serial one;
it is kept in the suite as the regression witness that the barrier
protocol itself does not disturb the event ledger.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from heapq import merge as _heap_merge
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bench.export import stats_to_csv_string
from ..sim.network import Message, MessageStats

__all__ = [
    "ShardEnvelopeError",
    "ShardRunResult",
    "SCENARIOS",
    "run_scenario_sharded",
    "run_scenario_serial",
    "run_shard_suite",
]


class ShardEnvelopeError(RuntimeError):
    """A system configuration or message violates the sharding envelope."""


# ----------------------------------------------------------------------
# scenario definitions
# ----------------------------------------------------------------------
class _Fig6aScenario:
    """The Fig. 6(a) load point (mirrors ``perf.harness._scenario_fig6a``)."""

    name = "fig6a"
    shardable = True
    barrier_ms = 50.0  # == MiddlewareConfig.hop_delay_ms default

    def build(self, quick: bool):
        from ..core.config import MiddlewareConfig
        from ..core.system import StreamIndexSystem

        return StreamIndexSystem(50, MiddlewareConfig(batch_size=1), seed=0)

    def attach(self, system) -> Any:
        from ..workload.generator import QueryWorkload

        system.attach_random_walk_streams()
        workload = QueryWorkload(system)
        workload.start()
        return workload

    def warmup_until(self, system, quick: bool) -> float:
        wl = system.config.workload
        fill = (system.config.window_size + system.config.batch_size) * wl.pmax_ms
        return fill + (2_000.0 if quick else 5_000.0)

    def measure_ms(self, quick: bool) -> float:
        return 4_000.0 if quick else 15_000.0

    def pre_reset(self, system, quick: bool) -> None:
        pass

    def post_reset(self, system, quick: bool) -> None:
        pass


class _LossySeed11Scenario:
    """The lossy churn pin (mirrors ``perf.harness._scenario_lossy_seed11``).

    Not shardable: the fault injector's loss/duplication decisions apply
    at ``hop`` time on the sending shard, but its jittered duplicate
    delays and the churn workload's node failures would break the
    fixed-lookahead barrier contract.  Runs at K = 1 as the witness that
    windowed execution is byte-identical to serial execution.
    """

    name = "lossy_seed11"
    shardable = False
    barrier_ms = 50.0

    def build(self, quick: bool):
        from ..core.config import MiddlewareConfig, WorkloadConfig
        from ..core.system import StreamIndexSystem

        config = MiddlewareConfig(
            m=16,
            window_size=16,
            k=2,
            batch_size=2,
            reliable_delivery=True,
            refresh_period_ms=2_000.0,
            loss_rate=0.05,
            duplicate_rate=0.01,
            workload=WorkloadConfig(
                pmin_ms=100.0,
                pmax_ms=150.0,
                bspan_ms=5_000.0,
                qrate_per_s=0.0,
                nper_ms=500.0,
            ),
        )
        return StreamIndexSystem(16, config, seed=11, with_stabilizer=True)

    def attach(self, system) -> Any:
        system.attach_random_walk_streams()
        return None

    def warmup_until(self, system, quick: bool) -> float:
        wl = system.config.workload
        fill = (system.config.window_size + system.config.batch_size) * wl.pmax_ms
        return fill + 2_000.0  # system.warmup() default extra

    def measure_ms(self, quick: bool) -> float:
        return 4_000.0 if quick else 8_000.0

    def pre_reset(self, system, quick: bool) -> None:
        from ..workload import ChurnWorkload

        client = system.app(0)
        donor_app = system.app(4)
        self._churn = ChurnWorkload(
            system,
            fail_rate_per_s=0.2,
            join_rate_per_s=0.2,
            protect=[client.node_id, donor_app.node_id],
        ).start()

    def post_reset(self, system, quick: bool) -> None:
        from ..core.queries import SimilarityQuery

        client = system.app(0)
        donor = next(iter(system.app(4).sources.values()))
        if not system.executes(client.node_id):
            return
        client.post_similarity_query(
            SimilarityQuery(
                pattern=donor.extractor.window.values(),
                radius=0.4,
                lifespan_ms=self.measure_ms(quick) + 5_000.0,
            )
        )


SCENARIOS: Dict[str, type] = {
    _Fig6aScenario.name: _Fig6aScenario,
    _LossySeed11Scenario.name: _LossySeed11Scenario,
}


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: continuation tags for the two exportable hop callbacks
_CONT_ROUTE = "route"
_CONT_DIRECT = "direct"

#: export entry: (deliver_time, seq, dst_node_id, continuation, msg_fields)
_Export = Tuple[float, int, int, Tuple[Any, ...], Tuple[Any, ...]]
#: injection entry (coordinator-side export, shard column added/removed)
_Injection = Tuple[float, int, Tuple[Any, ...], Tuple[Any, ...]]


class _WorkerPartition:
    """The :class:`~repro.sim.network.ShardPartition` of one worker.

    Collects exported hops in an outbox the worker drains at every
    barrier; assigns a per-worker monotonic sequence number so the
    coordinator can impose the ``(deliver_time, shard, seq)`` total
    order on simultaneous cross-shard messages.
    """

    def __init__(self, owned: frozenset, overlay) -> None:
        self.owned = owned
        self._route_step = overlay._route_step.__func__
        self._direct_arrive = overlay._direct_arrive.__func__
        self.outbox: List[_Export] = []
        self._seq = 0

    def is_local(self, node_id: int) -> bool:
        return node_id in self.owned

    def export(self, deliver_time, dst, on_arrival, cb_args, msg) -> None:
        func = getattr(on_arrival, "__func__", None)
        if func is self._route_step:
            _nxt, base_kind, transit_kind, on_delivered, first = cb_args
            if on_delivered is not None:
                raise ShardEnvelopeError(
                    "cannot export a routed hop with an on_delivered callback"
                )
            cont = (_CONT_ROUTE, base_kind, transit_kind, bool(first))
        elif func is self._direct_arrive:
            _dst, base_kind, on_delivered = cb_args
            if on_delivered is not None:
                raise ShardEnvelopeError(
                    "cannot export a direct hop with an on_delivered callback"
                )
            cont = (_CONT_DIRECT, base_kind)
        else:
            raise ShardEnvelopeError(
                f"unexportable hop continuation {on_arrival!r}"
            )
        fields = (
            msg.kind,
            msg.payload,
            msg.origin,
            msg.dest_key,
            msg.hops,
            msg.born,
            msg.root_id,
            msg.tag,
        )
        self.outbox.append((deliver_time, self._seq, dst, cont, fields))
        self._seq += 1


class _DeliveryLogStats(MessageStats):
    """A ledger that also logs every delivery for ordered replay.

    The float accumulator tables are order-sensitive; the coordinator
    discards each worker's own tables and rebuilds them by replaying
    the merged logs, so the worker only has to remember the facts.
    """

    def __init__(self) -> None:
        super().__init__()
        #: (time, kind, hops, latency) per delivered logical message,
        #: in execution order (nondecreasing time)
        self.delivery_log: List[Tuple[float, str, int, float]] = []

    def record_delivery(self, msg: Message, now: float) -> None:
        self.delivery_log.append((now, msg.kind, msg.hops, now - msg.born))
        super().record_delivery(msg, now)


def _require_shardable(system) -> None:
    """Reject configurations whose semantics escape the barrier model."""
    reasons = []
    if system.fault_injector is not None:
        reasons.append("fault injector active (jittered delays break lookahead)")
    if system.hierarchy_index is not None:
        reasons.append("cluster hierarchy active (unexportable continuations)")
    if system.stabilizer is not None:
        reasons.append("stabilizer active (membership changes are not replicated)")
    if reasons:
        raise ShardEnvelopeError(
            "scenario cannot run with more than one shard: " + "; ".join(reasons)
        )


def _inject(system, entries: Sequence[_Injection]) -> None:
    """Schedule imported cross-shard arrivals, in the coordinator's order."""
    network = system.network
    overlay = system.overlay
    ring = system.ring
    sim = system.sim
    for deliver_time, dst, cont, fields in entries:
        kind, payload, origin, dest_key, hops, born, root_id, tag = fields
        msg = Message(
            kind=kind,
            payload=payload,
            origin=origin,
            dest_key=dest_key,
            hops=hops,
            born=born,
            root_id=root_id,
            tag=tag,
        )
        node = ring.node(dst)
        if cont[0] == _CONT_ROUTE:
            _, base_kind, transit_kind, first = cont
            fn = overlay._route_step
            cb_args: Tuple[Any, ...] = (node, base_kind, transit_kind, None, first)
        else:
            _, base_kind = cont
            fn = overlay._direct_arrive
            cb_args = (node, base_kind, None)
        sim.schedule_at(deliver_time, network._arrive, dst, fn, cb_args, msg)


def _shard_worker(conn, scenario_name: str, quick: bool, shard: int, nshards: int) -> None:
    """One shard's process: build the replica, then serve barrier commands."""
    try:
        scenario = SCENARIOS[scenario_name]()
        system = scenario.build(quick)
        if nshards > 1:
            _require_shardable(system)
        ids = list(system.ring.node_ids)
        owned = frozenset(ids[i] for i in range(len(ids)) if i % nshards == shard)
        system.restrict_to(owned)
        partition = _WorkerPartition(owned, system.overlay)
        system.network.partition = partition
        _workload = scenario.attach(system)  # keep workload alive for the run
        conn.send(("ready", ids))
    except Exception:  # pragma: no cover - startup failure path
        conn.send(("err", traceback.format_exc()))
        return
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "run":
                _, until, injections = cmd
                _inject(system, injections)
                system.sim.run(until=until)
                exports, partition.outbox = partition.outbox, []
                conn.send(("ok", exports))
            elif op == "pre_reset":
                scenario.pre_reset(system, quick)
                conn.send(("ok", None))
            elif op == "reset":
                stats = _DeliveryLogStats()
                stats.in_flight_at_reset = system.network.in_flight
                system.network.stats = stats
                conn.send(("ok", None))
            elif op == "post_reset":
                scenario.post_reset(system, quick)
                conn.send(("ok", None))
            elif op == "stats":
                st = system.network.stats
                log = getattr(st, "delivery_log", [])
                conn.send(("ok", (st.to_snapshot(), log, system.sim.events_processed)))
            elif op == "quit":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown shard command {op!r}")
    except Exception:
        conn.send(("err", traceback.format_exc()))


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class ShardRunResult:
    """Outcome of one sharded (or serial reference) scenario run."""

    def __init__(
        self,
        name: str,
        jobs: int,
        csv: str,
        events: List[int],
        wall_s: float,
    ) -> None:
        self.name = name
        self.jobs = jobs
        self.csv = csv
        self.events = events
        self.wall_s = wall_s

    @property
    def digest(self) -> str:
        """sha256 of the merged stats CSV (the determinism witness)."""
        return hashlib.sha256(self.csv.encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "stats_sha256": self.digest,
            "events_per_shard": self.events,
            "wall_s": round(self.wall_s, 3),
        }


def _merge_stats(
    snapshots: Sequence[Dict[str, Any]],
    logs: Sequence[Sequence[Tuple[float, str, int, float]]],
) -> MessageStats:
    """Combine per-shard ledgers into the serial-equivalent ledger.

    Integer counters (and the in-flight scalar) are plain sums; the
    order-sensitive float accumulator tables are rebuilt by replaying
    every shard's delivery log in merged ``(time, shard, log-index)``
    order, which matches the serial accumulation order up to
    simultaneous deliveries of the same kind (whose contributions are
    equal-valued and therefore order-independent).
    """
    merged = MessageStats.from_snapshot(snapshots[0])
    for snap in snapshots[1:]:
        merged.merge(MessageStats.from_snapshot(snap))
    merged.hops_by_kind = {}
    merged.latency_by_kind = {}
    streams = (
        ((now, s, i, kind, hops, latency) for i, (now, kind, hops, latency) in enumerate(log))
        for s, log in enumerate(logs)
    )
    for now, _s, _i, kind, hops, latency in _heap_merge(*streams):
        acc = merged.hops_by_kind.get(kind)
        if acc is None:
            acc = merged.hops_by_kind[kind] = [0, 0]
        acc[0] += hops
        acc[1] += 1
        lat = merged.latency_by_kind.get(kind)
        if lat is None:
            lat = merged.latency_by_kind[kind] = [0.0, 0]
        lat[0] += latency
        lat[1] += 1
    return merged


class _WorkerPool:
    """The coordinator's handle on the forked shard processes."""

    def __init__(self, scenario_name: str, quick: bool, jobs: int) -> None:
        ctx = get_context("fork")
        self.conns = []
        self.procs = []
        for shard in range(jobs):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, scenario_name, quick, shard, jobs),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)
        self.node_ids: List[int] = self._recv(0)
        for shard in range(1, jobs):
            self._recv(shard)

    def _recv(self, shard: int):
        status, value = self.conns[shard].recv()
        if status not in ("ok", "ready"):
            raise RuntimeError(f"shard {shard} failed:\n{value}")
        return value

    def broadcast(self, *cmd) -> List[Any]:
        for conn in self.conns:
            conn.send(cmd)
        return [self._recv(s) for s in range(len(self.conns))]

    def step(self, until: float, pending: List[List[_Injection]]) -> List[List[_Export]]:
        for shard, conn in enumerate(self.conns):
            conn.send(("run", until, pending[shard]))
        return [self._recv(s) for s in range(len(self.conns))]

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("quit",))
            except (BrokenPipeError, OSError):
                pass
        for shard, conn in enumerate(self.conns):
            try:
                self._recv(shard)
            except (EOFError, OSError, RuntimeError):
                pass
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def run_scenario_sharded(
    name: str, *, quick: bool = False, jobs: int = 2
) -> ShardRunResult:
    """Run one scenario across ``jobs`` shard processes; merge the ledger."""
    import time as _time

    scenario_cls = SCENARIOS.get(name)
    if scenario_cls is None:
        raise ValueError(f"unknown shard scenario {name!r} (have {sorted(SCENARIOS)})")
    scenario = scenario_cls()
    effective_jobs = jobs if scenario.shardable else 1
    t0 = _time.perf_counter()
    pool = _WorkerPool(name, quick, effective_jobs)
    try:
        owner = {
            node_id: i % effective_jobs for i, node_id in enumerate(pool.node_ids)
        }
        # warmup_until only reads `.config`; building a whole system in
        # the coordinator just for the time bound would be wasteful
        warmup_end = scenario.warmup_until(
            _ConfigOnly(_scenario_config(scenario)), quick
        )
        measure_end = warmup_end + scenario.measure_ms(quick)
        barrier = scenario.barrier_ms

        pending: List[List[_Injection]] = [[] for _ in range(effective_jobs)]

        def advance(start: float, end: float) -> None:
            nonlocal pending
            t = start
            while t < end:
                t = min(t + barrier, end)
                replies = pool.step(t, pending)
                merged: List[Tuple[float, int, int, int, Tuple, Tuple]] = []
                for shard, exports in enumerate(replies):
                    for deliver_time, seq, dst, cont, fields in exports:
                        merged.append((deliver_time, shard, seq, dst, cont, fields))
                merged.sort(key=lambda e: (e[0], e[1], e[2]))
                pending = [[] for _ in range(effective_jobs)]
                for deliver_time, _shard, _seq, dst, cont, fields in merged:
                    pending[owner[dst]].append((deliver_time, dst, cont, fields))

        advance(0.0, warmup_end)
        pool.broadcast("pre_reset")
        pool.broadcast("reset")
        pool.broadcast("post_reset")
        advance(warmup_end, measure_end)
        replies = pool.broadcast("stats")
    finally:
        pool.close()
    snapshots = [r[0] for r in replies]
    logs = [r[1] for r in replies]
    events = [r[2] for r in replies]
    merged_stats = _merge_stats(snapshots, logs)
    csv = stats_to_csv_string(merged_stats)
    return ShardRunResult(name, effective_jobs, csv, events, _time.perf_counter() - t0)


class _ConfigOnly:
    """Just enough of a system for ``warmup_until``: the config."""

    def __init__(self, config) -> None:
        self.config = config


def _scenario_config(scenario):
    """The MiddlewareConfig a scenario's ``build`` would use."""
    from ..core.config import MiddlewareConfig, WorkloadConfig

    if scenario.name == "fig6a":
        return MiddlewareConfig(batch_size=1)
    if scenario.name == "lossy_seed11":
        return MiddlewareConfig(
            m=16,
            window_size=16,
            k=2,
            batch_size=2,
            reliable_delivery=True,
            refresh_period_ms=2_000.0,
            loss_rate=0.05,
            duplicate_rate=0.01,
            workload=WorkloadConfig(
                pmin_ms=100.0,
                pmax_ms=150.0,
                bspan_ms=5_000.0,
                qrate_per_s=0.0,
                nper_ms=500.0,
            ),
        )
    raise ValueError(f"no config probe for scenario {scenario.name!r}")


def run_scenario_serial(name: str, *, quick: bool = False) -> ShardRunResult:
    """The single-process reference run ``--check`` compares against."""
    import time as _time

    scenario_cls = SCENARIOS.get(name)
    if scenario_cls is None:
        raise ValueError(f"unknown shard scenario {name!r} (have {sorted(SCENARIOS)})")
    scenario = scenario_cls()
    t0 = _time.perf_counter()
    system = scenario.build(quick)
    _workload = scenario.attach(system)  # noqa: F841 - keep alive
    system.sim.run(until=scenario.warmup_until(system, quick))
    scenario.pre_reset(system, quick)
    system.reset_stats()
    scenario.post_reset(system, quick)
    system.run(scenario.measure_ms(quick))
    csv = stats_to_csv_string(system.network.stats)
    return ShardRunResult(
        name, 1, csv, [system.sim.events_processed], _time.perf_counter() - t0
    )


# ----------------------------------------------------------------------
# suite driver (the `repro shard` command)
# ----------------------------------------------------------------------
def run_shard_suite(
    *,
    scenarios: Optional[Sequence[str]] = None,
    jobs: int = 2,
    quick: bool = False,
    check: bool = False,
    output: Optional[str] = None,
    echo=print,
) -> int:
    """Run the sharded scenarios; optionally verify against serial runs.

    Returns a process exit code: 0 on success, 1 on a determinism
    mismatch (`--check`).
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    report: Dict[str, Any] = {
        "profile": "quick" if quick else "full",
        "jobs_requested": jobs,
        "scenarios": {},
    }
    failed = False
    for name in names:
        result = run_scenario_sharded(name, quick=quick, jobs=jobs)
        entry = result.to_dict()
        note = "" if result.jobs == jobs else f" (forced jobs={result.jobs}: not shardable)"
        echo(
            f"shard: {name} jobs={result.jobs} sha256={result.digest[:16]}… "
            f"in {result.wall_s:.1f}s{note}"
        )
        if check:
            serial = run_scenario_serial(name, quick=quick)
            entry["serial_sha256"] = serial.digest
            entry["match"] = serial.csv == result.csv
            if entry["match"]:
                echo(f"shard: {name} matches the serial run byte-for-byte")
            else:
                failed = True
                echo(
                    f"shard: MISMATCH for {name}: sharded {result.digest} "
                    f"!= serial {serial.digest}"
                )
        report["scenarios"][name] = entry
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        echo(f"shard: wrote {output}")
    return 1 if failed else 0
