"""Performance instrumentation and the ``repro bench`` harness.

This package is the **only** place in the source tree where wall-clock
timing is allowed (simlint D008 machine-enforces the boundary): the
simulated world (``sim``/``chord``/``core``) stays a pure function of
``(config, seed)`` and exposes its cost through *deterministic op
counters* instead, while this package correlates those counts with
wall time, memory and throughput.

Layout
------
``counters``
    The zero-dependency op-counter API threaded through the hot paths
    (:mod:`repro.sim.engine`, :mod:`repro.sim.network`,
    :mod:`repro.chord.routing`, :mod:`repro.core.runtime`).  Counting is
    off by default and costs one module-attribute load + ``None`` check
    per site when disabled.
``schema``
    The versioned ``BENCH_perf.json`` document model: build, validate,
    round-trip, and regression-compare bench reports.
``harness``
    The canonical scenario suite behind ``python -m repro bench`` (ring
    build, Fig. 6(a) load scenario, lossy seed-11, incremental-DFT
    microbench) with wall-time / peak-RSS / events-per-second
    measurement.

See PERFORMANCE.md for the methodology and the measured numbers.
"""

from .counters import OpCounters, counting, install, installed, uninstall
from .schema import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    compare_reports,
    load_report,
    validate_report,
)

__all__ = [
    "OpCounters",
    "counting",
    "install",
    "installed",
    "uninstall",
    "BENCH_SCHEMA_VERSION",
    "BenchReport",
    "compare_reports",
    "load_report",
    "validate_report",
]
