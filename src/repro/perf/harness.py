"""The canonical bench suite behind ``python -m repro bench``.

Four scenarios, chosen to cover the three hot paths the profiler
singles out (event engine, per-hop network + routing, summary
maintenance) plus the lossy/churn configuration that exercises the
reliability machinery:

``ring_build``
    Construct a Chord ring from scratch (``ChordRing.build``), which is
    dominated by finger-table computation — the static-routing cost.
``fig6a_load``
    The paper's Fig. 6(a) load scenario (Sec. V setup, N=50 default):
    the end-to-end number the ≥1.5× speedup target is measured on.
``lossy_seed11``
    The determinism-regression scenario (16 nodes, loss/dup/churn,
    seed 11) — reliability hot paths; its stats CSV digest doubles as
    byte-identity evidence in the report.
``fig6a_scale``
    The order-of-magnitude scale point: the Fig. 6(a) workload shape at
    N = 5000 nodes (N = 1000 under ``--quick``) with a 16-sample window
    and a thinned query rate so one process holds the whole ring.  Over
    a million simulator events per full run; the events/s and RSS-delta
    numbers here are the headline scale evidence (PERFORMANCE.md §11).
``fig6a_calendar``
    The same Fig. 6(a) scenario on the calendar-queue scheduler backend
    (``MiddlewareConfig(scheduler="calendar")``): identical simulated
    behaviour by construction, so the events/s delta against
    ``fig6a_load`` is a pure scheduler-cost comparison (PERFORMANCE.md
    records when each backend wins).
``dft_incremental``
    Pure summary-pipeline microbench: per-arrival incremental DFT
    updates (paper Eq. 5), scalar and bank-vectorised.
``replication_churn``
    The replication availability series (DESIGN.md §10): the same
    churn-plus-correlated-failure scenario at r = 1, 2, 3, recording
    ground-truth query recall, eventual delivery, and the message
    overhead each extra replica costs.  The committed numbers are the
    durability evidence: recall dips at r = 1 and recovers at r = 3.
``zipf_hotkey``
    The §13 load-balancing evidence: a Zipf-skewed hot-key workload
    (hot buzz cohort + flash crowd, ``repro.workload.hotkey``) run at
    ``v ∈ {1, 4, 16}`` virtual nodes per physical data center,
    recording the max/mean per-physical load ratio at each level — the
    committed numbers must improve monotonically with ``v``.
``sweep_parallel``
    The quick sweep profile run serially and fanned across workers
    (``repro.perf.parallel``), reporting the wall-clock ratio, the host
    cpu count it was measured on, and whether the two documents were
    byte-identical.  On a 1-cpu container the honest ratio is ~1×; the
    scenario exists so the speedup claim is always measured, never
    assumed.

This module is *inside* ``repro.perf`` and therefore allowed to read
wall clocks (``time.perf_counter``) and process RSS — the rest of the
source tree is not (simlint D008).
"""

from __future__ import annotations

import hashlib
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO, Tuple

import numpy as np

from .counters import OpCounters, counting
from .schema import BenchReport, Regression, ScenarioResult, compare_reports, load_report

__all__ = [
    "run_suite",
    "run_bench",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_BASELINE_PATH",
    "SPEEDUP_REF_PATH",
]

#: default output location — the repo root, per the bench trajectory.
DEFAULT_REPORT_PATH = "BENCH_perf.json"
#: committed regression-gate baseline (CI compares against this).
DEFAULT_BASELINE_PATH = "benchmarks/perf_baseline.json"
#: committed pre-optimization reference used to report the speedup.
SPEEDUP_REF_PATH = "benchmarks/perf_prepr.json"


def _peak_rss_kb() -> int:
    """Process peak RSS in kB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _current_rss_kb() -> Optional[int]:
    """Current (not peak) resident set in kB, from ``/proc/self/status``.

    ``ru_maxrss`` is a process-lifetime high-water mark, so in a serial
    in-process suite every scenario after the hungriest one inherits its
    peak.  The VmRSS delta across a scenario is the per-scenario number:
    how much resident memory that scenario's live state actually costs.
    Returns ``None`` on hosts without procfs (the field is then omitted).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _cache_hit_rate(ops: Dict[str, int]) -> Optional[float]:
    """Routing-memo hit rate from an op snapshot, or None if unused."""
    hits = ops.get("route.cache_hits", 0)
    misses = ops.get("route.cache_misses", 0)
    total = hits + misses
    return (hits / total) if total else None


def _measure(
    name: str,
    fn: Callable[[], Tuple[Optional[int], Dict[str, float], Dict[str, object]]],
) -> ScenarioResult:
    """Run one scenario under op counting and wall-clock timing.

    ``fn`` returns ``(events, throughput, meta)``; everything else
    (wall, RSS before/after, events/sec, op snapshot, route-memo hit
    rate) is measured here so every scenario reports the same way.
    """
    ops = OpCounters()
    rss_before = _current_rss_kb()
    start = time.perf_counter()
    with counting(ops):
        events, throughput, meta = fn()
    wall = time.perf_counter() - start
    rss_after = _current_rss_kb()
    rss_delta = (
        rss_after - rss_before
        if (rss_before is not None and rss_after is not None)
        else None
    )
    events_per_s = (events / wall) if (events is not None and wall > 0) else None
    snapshot = ops.snapshot()
    return ScenarioResult(
        name=name,
        wall_s=wall,
        peak_rss_kb=_peak_rss_kb(),
        rss_delta_kb=rss_delta,
        cache_hit_rate=_cache_hit_rate(snapshot),
        events=events,
        events_per_s=events_per_s,
        throughput=throughput,
        ops=snapshot,
        meta=meta,
    )


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_ring_build(quick: bool) -> ScenarioResult:
    from ..chord.ring import ChordRing

    n_nodes = 100 if quick else 300
    rounds = 3

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        t0 = time.perf_counter()
        for _ in range(rounds):
            ring = ChordRing(m=32)
            for i in range(n_nodes):
                ring.create_node(f"dc-{i}")
            ring.build()
        elapsed = time.perf_counter() - t0
        built_per_s = (rounds * n_nodes) / elapsed if elapsed > 0 else 0.0
        return None, {"nodes_built_per_s": built_per_s}, {
            "n_nodes": n_nodes,
            "rounds": rounds,
            "m": 32,
        }

    return _measure("ring_build", body)


def _scenario_fig6a(quick: bool) -> ScenarioResult:
    from ..core.config import MiddlewareConfig
    from ..workload.scenario import run_measured

    n_nodes = 50
    warmup_ms = 2_000.0 if quick else 5_000.0
    measure_ms = 4_000.0 if quick else 15_000.0

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        run = run_measured(
            n_nodes,
            config=MiddlewareConfig(batch_size=1),
            seed=0,
            warmup_extra_ms=warmup_ms,
            measure_ms=measure_ms,
        )
        events = run.system.sim.events_processed
        return events, {}, {
            "n_nodes": n_nodes,
            "seed": 0,
            "batch_size": 1,
            "warmup_extra_ms": warmup_ms,
            "measure_ms": measure_ms,
            "queries_posted": run.queries_posted,
        }

    return _measure("fig6a_load", body)


def _scenario_fig6a_calendar(quick: bool) -> ScenarioResult:
    from ..core.config import MiddlewareConfig
    from ..workload.scenario import run_measured

    n_nodes = 50
    warmup_ms = 2_000.0 if quick else 5_000.0
    measure_ms = 4_000.0 if quick else 15_000.0

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        run = run_measured(
            n_nodes,
            config=MiddlewareConfig(batch_size=1, scheduler="calendar"),
            seed=0,
            warmup_extra_ms=warmup_ms,
            measure_ms=measure_ms,
        )
        events = run.system.sim.events_processed
        return events, {}, {
            "n_nodes": n_nodes,
            "seed": 0,
            "batch_size": 1,
            "scheduler": "calendar",
            "warmup_extra_ms": warmup_ms,
            "measure_ms": measure_ms,
            "queries_posted": run.queries_posted,
        }

    return _measure("fig6a_calendar", body)


def _scenario_fig6a_scale(quick: bool) -> ScenarioResult:
    from ..core.config import MiddlewareConfig, WorkloadConfig
    from ..workload.scenario import run_measured

    n_nodes = 1_000 if quick else 5_000
    warmup_ms = 1_000.0
    measure_ms = 3_000.0 if quick else 9_000.0

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        run = run_measured(
            n_nodes,
            config=MiddlewareConfig(
                window_size=16,
                k=2,
                batch_size=1,
                workload=WorkloadConfig(qrate_per_s=0.5),
            ),
            seed=0,
            warmup_extra_ms=warmup_ms,
            measure_ms=measure_ms,
        )
        events = run.system.sim.events_processed
        return events, {}, {
            "n_nodes": n_nodes,
            "seed": 0,
            "window_size": 16,
            "k": 2,
            "batch_size": 1,
            "qrate_per_s": 0.5,
            "warmup_extra_ms": warmup_ms,
            "measure_ms": measure_ms,
            "queries_posted": run.queries_posted,
        }

    return _measure("fig6a_scale", body)


def _scenario_sweep_parallel(quick: bool) -> ScenarioResult:
    import os

    from .parallel import sweep_document, sweep_to_json

    jobs = 4

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        # always the quick sweep profile: the point is the wall-clock
        # ratio and the byte-identity witness, not the figure content
        t0 = time.perf_counter()
        serial = sweep_to_json(sweep_document(quick=True, jobs=1))
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fanned = sweep_to_json(sweep_document(quick=True, jobs=jobs))
        parallel_s = time.perf_counter() - t0
        return None, {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        }, {
            "jobs": jobs,
            "sweep_profile": "quick",
            "host_cpu_count": os.cpu_count(),
            "byte_identical": fanned == serial,
        }

    return _measure("sweep_parallel", body)


def _scenario_lossy_seed11(quick: bool) -> ScenarioResult:
    from ..bench.export import stats_to_csv_string
    from ..core import (
        MiddlewareConfig,
        SimilarityQuery,
        StreamIndexSystem,
        WorkloadConfig,
    )
    from ..workload import ChurnWorkload

    measure_ms = 4_000.0 if quick else 8_000.0

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        # Mirrors tests/integration/test_determinism.py::_run_lossy_once so
        # the digest below is comparable against the determinism suite.
        config = MiddlewareConfig(
            m=16,
            window_size=16,
            k=2,
            batch_size=2,
            reliable_delivery=True,
            refresh_period_ms=2_000.0,
            loss_rate=0.05,
            duplicate_rate=0.01,
            workload=WorkloadConfig(
                pmin_ms=100.0,
                pmax_ms=150.0,
                bspan_ms=5_000.0,
                qrate_per_s=0.0,
                nper_ms=500.0,
            ),
        )
        system = StreamIndexSystem(16, config, seed=11, with_stabilizer=True)
        system.attach_random_walk_streams()
        system.warmup()
        client = system.app(0)
        donor_app = system.app(4)
        donor = next(iter(donor_app.sources.values()))
        churn = ChurnWorkload(
            system,
            fail_rate_per_s=0.2,
            join_rate_per_s=0.2,
            protect=[client.node_id, donor_app.node_id],
        ).start()
        system.reset_stats()
        client.post_similarity_query(
            SimilarityQuery(
                pattern=donor.extractor.window.values(),
                radius=0.4,
                lifespan_ms=measure_ms + 5_000.0,
            )
        )
        system.run(measure_ms)
        churn.stop()
        csv = stats_to_csv_string(system.network.stats)
        digest = hashlib.sha256(csv.encode()).hexdigest()
        return system.sim.events_processed, {}, {
            "n_nodes": 16,
            "seed": 11,
            "measure_ms": measure_ms,
            "stats_sha256": digest,
        }

    return _measure("lossy_seed11", body)


def _scenario_replication_churn(quick: bool) -> ScenarioResult:
    from .parallel import _cell, run_cell

    n_nodes = 12 if quick else 24
    measure_ms = 8_000.0 if quick else 20_000.0
    seed = 7
    factors = (1, 2, 3)

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        events = 0
        throughput: Dict[str, float] = {}
        meta: Dict[str, object] = {
            "n_nodes": n_nodes,
            "seed": seed,
            "measure_ms": measure_ms,
            "churn_rate": 0.3,
            "loss_rate": 0.05,
            "consistency": "eventual",
            "factors": list(factors),
        }
        for r in factors:
            cell = _cell(
                "replication_availability",
                f"bench/repl/r{r}",
                "replication_availability",
                n_nodes,
                seed,
                replication=r,
                consistency="eventual",
                churn_rate=0.3,
                loss=0.05,
                measure_ms=measure_ms,
            )
            result = run_cell(cell)
            events += result["events"]
            values = result["values"]
            throughput[f"r{r}_query_recall"] = values["query recall"]
            throughput[f"r{r}_eventual_delivery"] = values["eventual delivery"]
            throughput[f"r{r}_msgs_per_mbr_event"] = values["msgs per mbr event"]
            meta[f"r{r}_replica_pushes"] = values["replica pushes"]
            meta[f"r{r}_handoffs_drained"] = values["handoffs drained"]
            meta[f"r{r}_read_repairs"] = values["read repairs"]
            meta[f"r{r}_stats_sha256"] = result["stats_sha256"]
        return events, throughput, meta

    return _measure("replication_churn", body)


def _scenario_zipf_hotkey(quick: bool) -> ScenarioResult:
    from ..core import MiddlewareConfig, StreamIndexSystem, WorkloadConfig
    from ..workload import attach_zipf_hotkey_streams

    n_physical = 16
    measure_ms = 8_000.0 if quick else 16_000.0
    seed = 2
    vnode_levels = (1, 4, 16)

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        events = 0
        throughput: Dict[str, float] = {}
        meta: Dict[str, object] = {
            "n_physical": n_physical,
            "seed": seed,
            "measure_ms": measure_ms,
            "vnode_levels": list(vnode_levels),
            "hot_fraction": 0.3,
            "zipf_s": 1.1,
            "flash_crowd": 8,
        }
        for v in vnode_levels:
            config = MiddlewareConfig(
                m=16,
                window_size=16,
                k=2,
                batch_size=2,
                virtual_nodes=v,
                workload=WorkloadConfig(
                    pmin_ms=100.0,
                    pmax_ms=1_000.0,
                    bspan_ms=8_000.0,
                    qrate_per_s=0.0,
                    nper_ms=500.0,
                ),
            )
            system = StreamIndexSystem(n_physical, config, seed=seed)
            attach_zipf_hotkey_streams(
                system, flash_crowd=8, flash_at_ms=measure_ms / 2.0
            )
            system.warmup()
            system.reset_stats()
            system.run(measure_ms)
            events += system.sim.events_processed
            throughput[f"v{v}_max_mean_ratio"] = system.load_skew_ratio()
            meta[f"v{v}_tokens"] = len(system.ring)
        return events, throughput, meta

    return _measure("zipf_hotkey", body)


def _scenario_dft_incremental(quick: bool) -> ScenarioResult:
    from ..sim.rng import RngRegistry
    from ..streams.dft import SlidingDFT, SlidingDFTBank

    n, k = 128, 8
    n_streams = 64
    steps = 1_000 if quick else 5_000

    def body() -> Tuple[Optional[int], Dict[str, float], Dict[str, object]]:
        rngs = RngRegistry(seed=0)
        rng = rngs.get("perf-dft")
        windows = rng.standard_normal((n_streams, n))
        arrivals = rng.standard_normal((steps, n_streams))

        # Scalar path: one SlidingDFT per stream, Python loop per arrival.
        dfts = [SlidingDFT(n, k, refresh_every=None) for _ in range(n_streams)]
        for s, dft in enumerate(dfts):
            dft.initialize(windows[s])
        heads = windows.copy()
        t0 = time.perf_counter()
        for t in range(steps):
            evicted = heads[:, t % n].copy()
            for s, dft in enumerate(dfts):
                dft.update(float(arrivals[t, s]), float(evicted[s]))
            heads[:, t % n] = arrivals[t]
        scalar_s = time.perf_counter() - t0

        # Vectorised path: one SlidingDFTBank, one array op per arrival tick.
        bank = SlidingDFTBank(n_streams, n, k)
        bank.initialize(windows)
        heads = windows.copy()
        t0 = time.perf_counter()
        for t in range(steps):
            evicted = heads[:, t % n].copy()
            bank.update(arrivals[t], evicted)
            heads[:, t % n] = arrivals[t]
        bank_s = time.perf_counter() - t0

        updates = steps * n_streams
        return None, {
            "scalar_updates_per_s": updates / scalar_s if scalar_s > 0 else 0.0,
            "bank_updates_per_s": updates / bank_s if bank_s > 0 else 0.0,
        }, {
            "window": n,
            "k": k,
            "streams": n_streams,
            "steps": steps,
        }

    return _measure("dft_incremental", body)


_SCENARIOS: Tuple[Tuple[str, Callable[[bool], ScenarioResult]], ...] = (
    ("ring_build", _scenario_ring_build),
    ("fig6a_load", _scenario_fig6a),
    ("fig6a_calendar", _scenario_fig6a_calendar),
    ("fig6a_scale", _scenario_fig6a_scale),
    ("lossy_seed11", _scenario_lossy_seed11),
    ("replication_churn", _scenario_replication_churn),
    ("zipf_hotkey", _scenario_zipf_hotkey),
    ("dft_incremental", _scenario_dft_incremental),
    ("sweep_parallel", _scenario_sweep_parallel),
)


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_suite(
    *,
    quick: bool = False,
    only: Optional[List[str]] = None,
    jobs: int = 1,
    out: Optional[TextIO] = None,
) -> BenchReport:
    """Execute the scenario suite and return the populated report.

    With ``jobs > 1`` the scenarios fan out across worker processes
    (each measured in its own process: per-scenario wall/RSS, no
    cross-scenario allocation bleed); the report is assembled in
    scenario order either way, so only the measurements differ.
    """
    out = out if out is not None else sys.stdout
    known = [name for name, _ in _SCENARIOS]
    if only:
        unknown = sorted(set(only) - set(known))
        if unknown:
            raise ValueError(f"unknown scenario(s) {unknown}; choose from {known}")
    selected = [name for name in known if not only or name in only]
    report = BenchReport(profile="quick" if quick else "full")

    def _record(result: ScenarioResult) -> None:
        report.add(result)
        line = f"bench: {result.name} done in {result.wall_s:.2f}s"
        if result.events_per_s is not None:
            line += f" ({result.events_per_s:,.0f} events/s)"
        if result.rss_delta_kb is not None:
            line += f" [rss {result.rss_delta_kb:+,} kB]"
        print(line, file=out, flush=True)

    if jobs > 1 and len(selected) > 1:
        from .parallel import run_bench_scenarios

        print(
            f"bench: {len(selected)} scenarios across "
            f"{min(jobs, len(selected))} workers ...",
            file=out,
            flush=True,
        )
        for result in run_bench_scenarios(selected, quick=quick, jobs=jobs):
            _record(result)
    else:
        runners = dict(_SCENARIOS)
        for name in selected:
            print(f"bench: {name} ...", file=out, flush=True)
            _record(runners[name](quick))
    return report


def _apply_speedup_ref(report: BenchReport, ref_path: Path, out: TextIO) -> None:
    """Annotate scenarios with speedup vs the pre-optimization reference."""
    ref = load_report(ref_path)
    for name, scenario in report.scenarios.items():
        base = ref.scenarios.get(name)
        if base is None or base.events_per_s is None or scenario.events_per_s is None:
            continue
        speedup = scenario.events_per_s / base.events_per_s
        scenario.meta["pre_optimization_events_per_s"] = base.events_per_s
        scenario.meta["speedup_vs_pre_optimization"] = speedup
        print(
            f"bench: {name} speedup vs pre-optimization reference: "
            f"{speedup:.2f}x",
            file=out,
        )


def run_bench(
    *,
    output: str = DEFAULT_REPORT_PATH,
    quick: bool = False,
    only: Optional[List[str]] = None,
    jobs: int = 1,
    check: Optional[str] = None,
    max_regression: float = 0.25,
    speedup_ref: Optional[str] = SPEEDUP_REF_PATH,
    out: Optional[TextIO] = None,
) -> int:
    """Full ``repro bench`` behaviour: run, annotate, write, gate.

    Returns a process exit code: 0 on success, 1 when ``check`` is given
    and any scenario regressed more than ``max_regression``.
    """
    out = out if out is not None else sys.stdout
    report = run_suite(quick=quick, only=only, jobs=jobs, out=out)
    if speedup_ref and Path(speedup_ref).is_file():
        _apply_speedup_ref(report, Path(speedup_ref), out)
    path = report.write(output)
    print(f"bench: report written to {path}", file=out)
    if check is None:
        return 0
    baseline = load_report(check)
    regressions: List[Regression] = compare_reports(
        report, baseline, max_regression=max_regression
    )
    if regressions:
        for regression in regressions:
            print(f"bench: REGRESSION {regression.describe()}", file=out)
        return 1
    print(
        f"bench: no regression vs {check} "
        f"(gate: {max_regression * 100:.0f}% events/s)",
        file=out,
    )
    return 0
