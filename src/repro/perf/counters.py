"""Deterministic op counters for the simulation hot paths.

The determinism contract (DESIGN.md §7) forbids wall-clock reads inside
``sim``/``chord``/``core``, so those layers cannot *time* themselves.
They can, however, *count* themselves: the number of events executed,
hops transmitted, routing steps taken and payloads dispatched is a pure
function of ``(config, seed)`` — identical on every machine and every
run.  The perf harness correlates these counts with wall time measured
out here, giving per-operation cost without perturbing the simulation.

Design constraints:

* **Zero dependencies.**  The instrumented packages import this module,
  so it must not import them (or anything heavy) back.
* **Near-zero cost when off.**  Instrumentation sites read the module
  attribute :data:`ACTIVE` and skip on ``None``; no function call is
  made on the disabled path::

      from repro.perf import counters as _opc
      ...
      c = _opc.ACTIVE
      if c is not None:
          c.inc("net.hops")

* **Deterministic.**  Counter values depend only on simulated behavior;
  two runs with the same ``(config, seed)`` produce identical
  snapshots (regression-tested in ``tests/perf/``).

Counter names are dotted, prefix = subsystem: ``sim.*`` (engine),
``net.*`` (network), ``route.*`` (Chord lookup), ``dispatch.*``
(runtime delivery), ``index.*`` (MBR candidate scans).  The full name
catalog is documented in PERFORMANCE.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["OpCounters", "ACTIVE", "install", "uninstall", "installed", "counting"]


class OpCounters:
    """A named bag of monotonically increasing operation counts."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        counts = self.counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self.counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """An independent, name-sorted copy of all counters."""
        return {k: self.counts[k] for k in sorted(self.counts)}

    def reset(self) -> None:
        """Zero every counter."""
        self.counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpCounters({self.snapshot()!r})"


#: the currently installed counter sink, or ``None`` (counting off).
#: Hot paths read this attribute directly; everything else should go
#: through :func:`install` / :func:`uninstall` / :func:`counting`.
ACTIVE: Optional[OpCounters] = None


def install(counters: Optional[OpCounters] = None) -> OpCounters:
    """Switch counting on, returning the active :class:`OpCounters`.

    Passing an existing instance resumes accumulation into it; omitting
    it installs a fresh zeroed one.  Installing over an already active
    sink replaces it (the old sink keeps its counts).
    """
    global ACTIVE
    ACTIVE = counters if counters is not None else OpCounters()
    return ACTIVE


def uninstall() -> Optional[OpCounters]:
    """Switch counting off; returns the sink that was active, if any."""
    global ACTIVE
    active, ACTIVE = ACTIVE, None
    return active


def installed() -> Optional[OpCounters]:
    """The active sink without side effects (``None`` when off)."""
    return ACTIVE


@contextmanager
def counting(counters: Optional[OpCounters] = None) -> Iterator[OpCounters]:
    """Context manager: count ops inside the block, restore state after.

    >>> from repro.perf.counters import counting
    >>> with counting() as ops:
    ...     pass  # run a scenario
    >>> ops.snapshot()
    {}
    """
    global ACTIVE
    previous = ACTIVE
    active = counters if counters is not None else OpCounters()
    ACTIVE = active
    try:
        yield active
    finally:
        ACTIVE = previous
