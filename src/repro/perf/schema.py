"""The versioned ``BENCH_perf.json`` document model.

``python -m repro bench`` emits one JSON report at the repo root; CI
uploads it as an artifact and gates merges on throughput regressions
against a committed baseline (``benchmarks/perf_baseline.json``).  This
module owns the document shape so producers, the regression gate and
the round-trip tests all agree on one schema.

Schema (version 1)
------------------
::

    {
      "schema_version": 1,
      "suite": "repro-bench",
      "profile": "full" | "quick",
      "scenarios": {
        "<name>": {
          "wall_s": float,          # wall-clock of the measured phase
          "peak_rss_kb": int,       # ru_maxrss after the scenario (kB)
          "rss_delta_kb": int | null,       # VmRSS growth across the scenario
          "cache_hit_rate": float | null,   # route memo hits/(hits+misses)
          "events": int | null,     # simulator events in the phase
          "events_per_s": float | null,
          "throughput": {"<metric>": float, ...},   # scenario extras
          "ops": {"<counter>": int, ...},           # deterministic
          "meta": {...}             # free-form scenario parameters
        }, ...
      }
    }

``ops`` counts are deterministic (identical across runs/machines for a
given config+seed); everything else is host-dependent measurement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SchemaError",
    "ScenarioResult",
    "BenchReport",
    "validate_report",
    "load_report",
    "compare_reports",
    "Regression",
]

BENCH_SCHEMA_VERSION = 1
"""Bump when the JSON document shape changes incompatibly."""

SUITE_NAME = "repro-bench"

PathLike = Union[str, Path]


class SchemaError(ValueError):
    """Raised when a bench document does not match the schema."""


@dataclass
class ScenarioResult:
    """Measured result of one bench scenario."""

    name: str
    wall_s: float
    peak_rss_kb: int
    events: Optional[int] = None
    events_per_s: Optional[float] = None
    rss_delta_kb: Optional[int] = None
    cache_hit_rate: Optional[float] = None
    throughput: Dict[str, float] = field(default_factory=dict)
    ops: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready mapping for this scenario."""
        return {
            "wall_s": self.wall_s,
            "peak_rss_kb": self.peak_rss_kb,
            "rss_delta_kb": self.rss_delta_kb,
            "cache_hit_rate": self.cache_hit_rate,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "throughput": dict(self.throughput),
            "ops": {k: self.ops[k] for k in sorted(self.ops)},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "ScenarioResult":
        """Parse one scenario entry (validation happens in the caller)."""
        return cls(
            name=name,
            wall_s=float(data["wall_s"]),
            peak_rss_kb=int(data["peak_rss_kb"]),
            events=None if data.get("events") is None else int(data["events"]),
            events_per_s=(
                None
                if data.get("events_per_s") is None
                else float(data["events_per_s"])
            ),
            rss_delta_kb=(
                None
                if data.get("rss_delta_kb") is None
                else int(data["rss_delta_kb"])
            ),
            cache_hit_rate=(
                None
                if data.get("cache_hit_rate") is None
                else float(data["cache_hit_rate"])
            ),
            throughput=dict(data.get("throughput", {})),
            ops={k: int(v) for k, v in data.get("ops", {}).items()},
            meta=dict(data.get("meta", {})),
        )


@dataclass
class BenchReport:
    """One full bench run: every scenario plus run-level metadata."""

    profile: str = "full"
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)

    def add(self, result: ScenarioResult) -> ScenarioResult:
        """Record a scenario result (name-keyed)."""
        self.scenarios[result.name] = result
        return result

    def to_dict(self) -> Dict[str, Any]:
        """The complete JSON document as a mapping."""
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "suite": SUITE_NAME,
            "profile": self.profile,
            "scenarios": {
                name: self.scenarios[name].to_dict()
                for name in sorted(self.scenarios)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchReport":
        """Parse and validate a JSON document into a report."""
        validate_report(data)
        report = cls(profile=data["profile"])
        for name, entry in data["scenarios"].items():
            report.add(ScenarioResult.from_dict(name, entry))
        return report

    def write(self, path: PathLike) -> Path:
        """Write the report as stably formatted JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def validate_report(data: Any) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid version-1 doc."""
    if not isinstance(data, dict):
        raise SchemaError(f"bench document must be an object, got {type(data).__name__}")
    version = data.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} (expected {BENCH_SCHEMA_VERSION})"
        )
    if data.get("suite") != SUITE_NAME:
        raise SchemaError(f"unknown suite {data.get('suite')!r}")
    if not isinstance(data.get("profile"), str):
        raise SchemaError("profile must be a string")
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise SchemaError("scenarios must be a non-empty object")
    for name, entry in scenarios.items():
        if not isinstance(entry, dict):
            raise SchemaError(f"scenario {name!r} must be an object")
        for key in ("wall_s", "peak_rss_kb"):
            if not isinstance(entry.get(key), (int, float)) or isinstance(
                entry.get(key), bool
            ):
                raise SchemaError(f"scenario {name!r} missing numeric {key!r}")
        for key in ("events", "events_per_s", "rss_delta_kb", "cache_hit_rate"):
            value = entry.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise SchemaError(f"scenario {name!r} field {key!r} must be numeric or null")
        ops = entry.get("ops", {})
        if not isinstance(ops, dict) or any(
            not isinstance(v, int) or isinstance(v, bool) for v in ops.values()
        ):
            raise SchemaError(f"scenario {name!r} ops must map names to integers")


def load_report(path: PathLike) -> BenchReport:
    """Read and validate a bench JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read bench report {path}: {exc}") from exc
    return BenchReport.from_dict(data)


@dataclass
class Regression:
    """One scenario whose throughput dropped past the allowed budget."""

    scenario: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (below 1.0 means slower than baseline)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        """Human-readable one-liner for CI logs."""
        return (
            f"{self.scenario}.{self.metric}: {self.current:,.0f} vs baseline "
            f"{self.baseline:,.0f} ({(1.0 - self.ratio) * 100.0:.1f}% slower)"
        )


def compare_reports(
    current: BenchReport, baseline: BenchReport, *, max_regression: float = 0.25
) -> List[Regression]:
    """Throughput regressions of ``current`` against ``baseline``.

    Compares ``events_per_s`` for every scenario present in both
    reports (scenarios missing on either side are skipped — the suite
    may grow).  A scenario regresses when its throughput falls below
    ``(1 - max_regression)`` of the baseline value.
    """
    if not (0.0 < max_regression < 1.0):
        raise ValueError(f"max_regression must be in (0, 1), got {max_regression}")
    regressions: List[Regression] = []
    for name in sorted(set(current.scenarios) & set(baseline.scenarios)):
        base = baseline.scenarios[name].events_per_s
        cur = current.scenarios[name].events_per_s
        if base is None or cur is None or base <= 0:
            continue
        if cur < base * (1.0 - max_regression):
            regressions.append(
                Regression(
                    scenario=name, metric="events_per_s", baseline=base, current=cur
                )
            )
    return regressions
