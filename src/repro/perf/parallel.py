"""Parallel experiment orchestration: fan sweep cells across processes.

Every figure in the evaluation is a sweep — over N, over churn rate,
over loss rate — and every point in a sweep is an *independent*
simulation: its own :class:`~repro.core.system.StreamIndexSystem`, its
own seed-derived RNG registry, no shared mutable state.  That makes the
sweep embarrassingly parallel, as long as two invariants hold:

1. **A cell is a pure function of its spec.**  :class:`SweepCell` is a
   picklable value object naming a registered runner plus its
   parameters; the runner builds the whole world from that spec, so it
   computes the same result in any process, in any order.
2. **Merging is order-defined by the spec, not by completion.**
   Workers may finish in any order, but results are reassembled in
   *cell order* (``Pool.imap`` preserves input order), so the merged
   document is byte-identical to a serial run: ``--jobs 4`` and
   ``--jobs 1`` produce the same bytes, and ``repro sweep --check``
   verifies exactly that.

Results cross the process boundary as JSON-safe dicts carrying
:meth:`~repro.sim.network.MessageStats.to_snapshot` documents; the
parent rebuilds :class:`~repro.core.metrics.FigureMetrics` from the
snapshot (its projections need only ``(stats, n_nodes, duration_ms)``)
and projects the figure series exactly as the serial
:class:`~repro.bench.harness.SweepCache` would.

This module lives in ``repro.perf`` deliberately: it is allowed to read
wall clocks (simlint D008) and to spawn processes (simlint D009) — the
simulated world itself is not.  The sweep *document* contains no timing
or host information; wall-clock and worker counts are printed to stdout
only, so the artifact stays host-independent.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

__all__ = [
    "SweepCell",
    "CELL_RUNNERS",
    "run_cell",
    "run_cells",
    "SnapshotRun",
    "snapshot_run",
    "measured_cell",
    "build_sweep",
    "sweep_document",
    "run_sweep",
    "run_bench_scenarios",
    "DEFAULT_SWEEP_PATH",
    "SWEEP_SCHEMA_VERSION",
]

SWEEP_SCHEMA_VERSION = 1
SWEEP_SUITE = "repro-sweep"

#: default output location — the repo root, next to BENCH_perf.json.
DEFAULT_SWEEP_PATH = "SWEEP_results.json"


# ----------------------------------------------------------------------
# cell specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep: a registered runner plus its parameters.

    Cells are immutable, picklable value objects — the unit of work
    shipped to a pool worker.  ``params`` is a sorted tuple of
    ``(name, value)`` pairs rather than a dict so two equal cells
    compare (and pickle) identically regardless of construction order.
    """

    runner: str
    label: str
    scenario: str
    n_nodes: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a plain dict (runner-side convenience)."""
        return dict(self.params)


def _cell(runner: str, label: str, scenario: str, n_nodes: int, seed: int, **params: Any) -> SweepCell:
    return SweepCell(
        runner=runner,
        label=label,
        scenario=scenario,
        n_nodes=n_nodes,
        seed=seed,
        params=tuple(sorted(params.items())),
    )


def measured_cell(
    n_nodes: int,
    *,
    config=None,
    seed: int = 0,
    radius: Optional[float] = None,
    hit_fraction: float = 0.5,
    warmup_extra_ms: float = 2_000.0,
    measure_ms: float = 20_000.0,
    scenario: str = "fig_sweep",
) -> SweepCell:
    """A Sec.-V measured-run cell (the Fig. 6(a)/7/8 sweep point)."""
    return _cell(
        "measured_run",
        f"{scenario}/N{n_nodes}/s{seed}",
        scenario,
        n_nodes,
        seed,
        config=config,
        radius=radius,
        hit_fraction=hit_fraction,
        warmup_extra_ms=warmup_extra_ms,
        measure_ms=measure_ms,
    )


# ----------------------------------------------------------------------
# cell runners (top-level functions: workers resolve them by name)
# ----------------------------------------------------------------------
def _stats_digest(stats) -> str:
    """sha256 of the canonical stats CSV — the byte-identity witness."""
    from ..bench.export import stats_to_csv_string

    return hashlib.sha256(stats_to_csv_string(stats).encode()).hexdigest()


def _run_measured_cell(cell: SweepCell) -> Dict[str, Any]:
    """The paper's standard scenario; ships the full stats snapshot."""
    from ..workload.scenario import run_measured

    p = cell.kwargs()
    run = run_measured(
        cell.n_nodes,
        config=p.get("config"),
        seed=cell.seed,
        radius=p.get("radius"),
        hit_fraction=p.get("hit_fraction", 0.5),
        warmup_extra_ms=p.get("warmup_extra_ms", 2_000.0),
        measure_ms=p.get("measure_ms", 20_000.0),
    )
    stats = run.metrics.stats
    return {
        "stats": stats.to_snapshot(),
        "n_nodes": cell.n_nodes,
        "measured_ms": run.measured_ms,
        "queries_posted": run.queries_posted,
        "events": run.system.sim.events_processed,
        "stats_sha256": _stats_digest(stats),
    }


def _churn_system(
    cell: SweepCell,
    config,
    rate: float,
    measure_ms: float,
    *,
    query_lifespan_ms: Optional[float] = None,
):
    """Shared body of the churn/loss availability cells.

    Builds the bench_churn_availability scenario: N nodes, one stream
    each, a protected client and donor, Poisson crash/join churn, one
    long-lived similarity query posted at reset.
    """
    from ..core import SimilarityQuery, StreamIndexSystem
    from ..workload import ChurnWorkload

    system = StreamIndexSystem(cell.n_nodes, config, seed=cell.seed, with_stabilizer=True)
    system.attach_random_walk_streams()
    system.warmup()

    client = system.app(0)
    donor_app = system.app(4)
    donor = next(iter(donor_app.sources.values()))
    churn = ChurnWorkload(
        system,
        fail_rate_per_s=rate,
        join_rate_per_s=rate,
        protect=[client.node_id, donor_app.node_id],
    ).start()

    system.reset_stats()
    query = SimilarityQuery(
        pattern=donor.extractor.window.values(),
        radius=0.4,
        lifespan_ms=(
            query_lifespan_ms if query_lifespan_ms is not None else measure_ms + 5_000.0
        ),
    )
    qid = client.post_similarity_query(query)
    system.run(measure_ms)
    churn.stop()
    return system, client, churn, qid, query


def _run_churn_cell(cell: SweepCell) -> Dict[str, Any]:
    """Availability under churn (bench_churn_availability.run_at)."""
    from ..core import KIND, MiddlewareConfig, WorkloadConfig

    p = cell.kwargs()
    rate = p["rate"]
    measure_ms = p["measure_ms"]
    config = MiddlewareConfig(
        window_size=64,
        batch_size=2,
        workload=WorkloadConfig(qrate_per_s=0.0),
    )
    system, client, churn, qid, _ = _churn_system(cell, config, rate, measure_ms)

    stats = system.network.stats
    seconds = measure_ms / 1000.0
    live = sum(1 for a in system.all_apps if a.node.alive)
    values = {
        "mbr rate /node/s": stats.originations[KIND.MBR] / live / seconds,
        "responses received": len(client.similarity_results[qid]) and 1.0 or 0.0,
        "matches": float(len(client.similarity_results[qid])),
        "failures": float(churn.failures),
        "joins": float(churn.joins),
    }
    return {
        "values": values,
        "events": system.sim.events_processed,
        "stats_sha256": _stats_digest(stats),
    }


def _run_loss_cell(cell: SweepCell) -> Dict[str, Any]:
    """Delivery under loss (bench_churn_availability.run_lossy)."""
    from ..core import MiddlewareConfig, WorkloadConfig

    p = cell.kwargs()
    loss = p["loss"]
    measure_ms = p["measure_ms"]
    config = MiddlewareConfig(
        window_size=64,
        batch_size=2,
        reliable_delivery=True,
        refresh_period_ms=2_000.0,
        loss_rate=loss,
        duplicate_rate=0.01,
        workload=WorkloadConfig(qrate_per_s=0.0),
    )
    system, client, churn, qid, _ = _churn_system(
        cell, config, p.get("churn_rate", 0.1), measure_ms
    )

    stats = system.network.stats
    values = {
        "delivery ratio": stats.delivery_ratio(),
        "eventual delivery": system.eventual_delivery_ratio(),
        "retransmissions": float(sum(stats.retransmissions.values())),
        "dead letters": float(sum(stats.dead_letters.values())),
        "drops": float(stats.total_drops()),
        "matches": float(len(client.similarity_results[qid])),
    }
    return {
        "values": values,
        "events": system.sim.events_processed,
        "stats_sha256": _stats_digest(stats),
    }


def _similarity_recall(system, client, qid: int, query) -> Optional[float]:
    """Ground-truth query recall, computed from the sources themselves.

    *Expected* is every stream whose source is alive and whose most
    recent publication is both still within its lifespan and inside the
    query ball (the oracle reads ``SourceState.last_publish`` directly,
    bypassing the overlay).  *Reported* is every stream the client ever
    received a match for.  Recall is their overlap over expected —
    1.0 when nothing was expected.
    """
    feature = query.feature_vector(system.config.k)
    now = system.sim.now
    expected = set()
    for app in system.all_apps:
        if not app.node.alive:
            continue
        for stream_id, src in app.sources.items():
            last = src.last_publish
            if last is None:
                continue
            if src.last_publish_ms + last.lifespan_ms <= now:
                continue
            if last.mbr.mindist(feature) <= query.radius + 1e-12:
                expected.add(stream_id)
    if not expected:
        return None
    reported = {m.stream_id for m in client.similarity_results[qid]}
    return len(expected & reported) / len(expected)


def _run_replication_cell(cell: SweepCell) -> Dict[str, Any]:
    """Availability vs. replication factor under churn (the r-series).

    Publication is deliberately *sparse* (long value period, long MBR
    lifespan, no soft-state refresh): once a holder crashes, its index
    entries stay dark until the source's next natural publication,
    which is what makes durability the replica layer's job rather than
    the workload's.  After the churn window the membership heals
    (stabilisation + a drain for anti-entropy and hinted handoff), a
    *correlated failure burst* kills several ring-spread nodes at once,
    and a fresh probe query measures recall against the ground-truth
    oracle before the sources get a chance to republish — at ``r = 1``
    the freshly-crashed arcs have nothing to report; at ``r > 1`` their
    successors answer from replicas.
    """
    from ..core import KIND, MiddlewareConfig, SimilarityQuery, WorkloadConfig

    p = cell.kwargs()
    r = p["replication"]
    measure_ms = p["measure_ms"]
    config = MiddlewareConfig(
        window_size=16,
        batch_size=2,
        reliable_delivery=True,
        loss_rate=p.get("loss", 0.05),
        duplicate_rate=0.01,
        replication_factor=r,
        consistency=p.get("consistency", "eventual"),
        workload=WorkloadConfig(
            pmin_ms=4_000.0,
            pmax_ms=5_000.0,
            bspan_ms=16_000.0,
            qrate_per_s=0.0,
            nper_ms=500.0,
        ),
    )
    system, client, churn, qid, query = _churn_system(
        cell, config, p.get("churn_rate", 0.3), measure_ms
    )
    if system.stabilizer is not None:
        system.stabilizer.stabilize_until_converged()
    system.run(p.get("drain_ms", 2_000.0))

    # correlated failure burst: content-based routing co-locates the
    # matching entries on the arcs covering the query ball, so a
    # ring-spread burst barely touches them — kill the data centers
    # currently *indexing the hot region* instead (deterministically:
    # most matching entries first, never the probing client)
    probe_radius = float(p.get("probe_radius", 0.8))
    feature = query.feature_vector(system.config.k)
    now = system.sim.now
    size = system.ring.space.size
    loaded = []
    for app in system.all_apps:
        if not app.node.alive or app.node_id == client.node_id:
            continue
        # count only *covering-placement* copies (the span walk derived
        # from the MBR itself).  At r > 1 hinted handoff promotes
        # replicas into out-of-span primaries; counting those would
        # both inflate the burst size with r and aim it squarely at the
        # replica arcs, which makes the r-series an unfair comparison
        # against an omniscient adversary rather than a failure model.
        matching = 0
        for entries in app.index._mbrs.values():
            for e in entries:
                if e.expires <= now or e.mbr.mindist(feature) > probe_radius + 1e-12:
                    continue
                klow, khigh = system.mapper.key_range(*e.mbr.first_coordinate_interval)
                width = (khigh - klow) % size
                walked = (app.node_id - klow) % size
                if walked < width or app.node.owns_key(khigh % size):
                    matching += 1
        if matching:
            loaded.append((matching, app.node_id, app))
    loaded.sort(key=lambda t: (-t[0], t[1]))
    # half the hot set by default: enough to darken r = 1, while a
    # burst that wipes out primaries *and* both replica arcs would
    # exceed any replica scheme's tolerance and prove nothing
    kill = int(p.get("kill", 0)) or max(1, len(loaded) // 2)
    for _, _, app in loaded[:kill]:
        system.fail_node(app)
    if system.stabilizer is not None:
        system.stabilizer.stabilize_until_converged()

    # the probe is repeated: a single sub's range span is fire-and-
    # forget, so one lost span copy can sever the whole query from its
    # aggregator — a transport artifact, not the index durability this
    # cell measures.  max-recall over the non-vacuous probes discounts
    # it (a probe whose expected set is empty proves nothing).
    recalls = []
    for _ in range(int(p.get("probes", 2))):
        probe = SimilarityQuery(
            pattern=query.pattern, radius=probe_radius, lifespan_ms=10_000.0
        )
        probe_id = client.post_similarity_query(probe)
        system.run(p.get("probe_ms", 1_500.0))
        outcome = _similarity_recall(system, client, probe_id, probe)
        if outcome is not None:
            recalls.append(outcome)
    recall = max(recalls) if recalls else 1.0

    stats = system.network.stats
    total_sends = float(sum(stats.sends_by_kind.values()))
    mbr_events = max(1.0, float(stats.originations[KIND.MBR]))
    values = {
        "query recall": recall,
        "eventual delivery": system.eventual_delivery_ratio(),
        "msgs per mbr event": total_sends / mbr_events,
        "replica divergence": system.replica_divergence(),
        "handoff backlog": float(system.handoff_backlog()),
        "replica pushes": float(stats.sends_by_kind[KIND.REPLICA]),
        "handoffs drained": float(sum(stats.handoffs_drained.values())),
        "read repairs": float(sum(stats.read_repairs.values())),
        "matches": float(len(client.similarity_results[qid])),
        "failures": float(churn.failures),
        "joins": float(churn.joins),
    }
    return {
        "values": values,
        "events": system.sim.events_processed,
        "stats_sha256": _stats_digest(stats),
    }


def _run_bench_scenario_cell(cell: SweepCell):
    """One ``repro bench`` scenario, measured inside the worker.

    Wall-clock and peak RSS are per-worker-process, which is exactly
    what a bench wants: one scenario's allocation spike cannot inflate
    another's RSS reading the way it can in a serial in-process run.
    """
    from .harness import _SCENARIOS

    quick = cell.kwargs().get("quick", False)
    runners = dict(_SCENARIOS)
    return runners[cell.scenario](quick)


CELL_RUNNERS = {
    "measured_run": _run_measured_cell,
    "churn_availability": _run_churn_cell,
    "loss_availability": _run_loss_cell,
    "replication_availability": _run_replication_cell,
    "bench_scenario": _run_bench_scenario_cell,
}


def run_cell(cell: SweepCell):
    """Execute one cell in the current process."""
    try:
        runner = CELL_RUNNERS[cell.runner]
    except KeyError:
        raise ValueError(
            f"unknown cell runner {cell.runner!r}; "
            f"choose from {sorted(CELL_RUNNERS)}"
        ) from None
    return runner(cell)


def run_cells(cells: Sequence[SweepCell], *, jobs: int = 1) -> List[Any]:
    """Run cells, serially or across a process pool; results in cell order.

    ``jobs <= 1`` bypasses multiprocessing entirely (no pickling, no
    fork) — that path *is* the serial reference the byte-compare checks
    against.  With ``jobs > 1`` the cells fan out over a ``fork``-start
    pool (every worker inherits the imported modules; safe here because
    the simulator keeps no process-global RNG state — simlint D001) and
    ``imap`` reassembles results in submission order, which is what
    makes the merge independent of completion order.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(c) for c in cells]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    with ctx.Pool(processes=min(jobs, len(cells))) as pool:
        return list(pool.imap(run_cell, cells))


# ----------------------------------------------------------------------
# snapshot-backed runs (SweepCache interop)
# ----------------------------------------------------------------------
@dataclass
class SnapshotRun:
    """A measured run rebuilt from a worker's snapshot result.

    Quacks like :class:`~repro.workload.scenario.MeasuredRun` for every
    figure projection (``.metrics``, ``.measured_ms``,
    ``.queries_posted``) — it just no longer carries the live system,
    which never crosses the process boundary.
    """

    metrics: Any
    measured_ms: float
    queries_posted: int


def figure_metrics_from(result: Dict[str, Any]):
    """Rebuild :class:`FigureMetrics` from a measured-cell result."""
    from ..core.metrics import FigureMetrics
    from ..sim.network import MessageStats

    return FigureMetrics(
        stats=MessageStats.from_snapshot(result["stats"]),
        n_nodes=result["n_nodes"],
        duration_ms=result["measured_ms"],
    )


def snapshot_run(result: Dict[str, Any]) -> SnapshotRun:
    """Wrap a measured-cell result as a MeasuredRun stand-in."""
    return SnapshotRun(
        metrics=figure_metrics_from(result),
        measured_ms=result["measured_ms"],
        queries_posted=result["queries_posted"],
    )


# ----------------------------------------------------------------------
# the standard sweep (what `repro sweep` runs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepGroup:
    """One x-axis sweep: the cells plus how to project their figures."""

    name: str
    x_label: str
    xs: Tuple[float, ...]
    cells: Tuple[SweepCell, ...]
    #: figure name -> FigureMetrics method name (measured groups only)
    projections: Tuple[Tuple[str, str], ...] = ()


def build_sweep(*, quick: bool = False, seed: int = 0) -> List[SweepGroup]:
    """The standard sweep groups: Sec.-V figures plus churn/loss."""
    from ..bench.harness import (
        DEFAULT_MEASURE_MS,
        DEFAULT_WARMUP_EXTRA_MS,
        PAPER_NODE_COUNTS,
    )
    from ..core import MiddlewareConfig

    if quick:
        node_counts: Tuple[int, ...] = (16, 24)
        fig_measure, fig_warmup = 3_000.0, 1_000.0
        avail_nodes, avail_measure = 12, 6_000.0
        churn_rates: Tuple[float, ...] = (0.0, 0.3)
        loss_rates: Tuple[float, ...] = (0.0, 0.1)
        repl_factors: Tuple[int, ...] = (1, 2)
        repl_measure = 8_000.0
    else:
        node_counts = PAPER_NODE_COUNTS
        fig_measure, fig_warmup = DEFAULT_MEASURE_MS, DEFAULT_WARMUP_EXTRA_MS
        avail_nodes, avail_measure = 24, 25_000.0
        churn_rates = (0.0, 0.1, 0.3)
        loss_rates = (0.0, 0.02, 0.05, 0.10)
        repl_factors = (1, 2, 3)
        repl_measure = 20_000.0

    fig_config = MiddlewareConfig(batch_size=1)  # benchmarks/conftest.py config
    groups = [
        SweepGroup(
            name="fig_sweep",
            x_label="N",
            xs=tuple(float(n) for n in node_counts),
            cells=tuple(
                measured_cell(
                    n,
                    config=fig_config,
                    seed=seed,
                    warmup_extra_ms=fig_warmup,
                    measure_ms=fig_measure,
                )
                for n in node_counts
            ),
            projections=(
                ("fig6a_load", "load_components"),
                ("fig7_overhead", "overhead_components"),
                ("fig8_hops", "hop_components"),
            ),
        ),
        SweepGroup(
            name="churn_availability",
            x_label="churn rate (fail+join /s)",
            xs=churn_rates,
            cells=tuple(
                _cell(
                    "churn_availability",
                    f"churn/r{rate}/N{avail_nodes}/s{seed + 7}",
                    "churn_availability",
                    avail_nodes,
                    seed + 7,
                    rate=rate,
                    measure_ms=avail_measure,
                )
                for rate in churn_rates
            ),
        ),
        SweepGroup(
            name="loss_availability",
            x_label="per-hop loss rate",
            xs=loss_rates,
            cells=tuple(
                _cell(
                    "loss_availability",
                    f"loss/p{loss}/N{avail_nodes}/s{seed + 7}",
                    "loss_availability",
                    avail_nodes,
                    seed + 7,
                    loss=loss,
                    churn_rate=0.1,
                    measure_ms=avail_measure,
                )
                for loss in loss_rates
            ),
        ),
        SweepGroup(
            name="replication_availability",
            x_label="replication factor r",
            xs=tuple(float(r) for r in repl_factors),
            cells=tuple(
                _cell(
                    "replication_availability",
                    f"repl/r{r}/N{avail_nodes}/s{seed + 7}",
                    "replication_availability",
                    avail_nodes,
                    seed + 7,
                    replication=r,
                    consistency="eventual",
                    churn_rate=0.3,
                    loss=0.05,
                    measure_ms=repl_measure,
                )
                for r in repl_factors
            ),
        ),
    ]
    return groups


def _series_from(values_in_order: List[Dict[str, float]]) -> Dict[str, List[float]]:
    """Column-major merge of per-x value dicts, in x order."""
    series: Dict[str, List[float]] = {}
    for values in values_in_order:
        for key, value in values.items():
            series.setdefault(key, []).append(value)
    return series


def sweep_document(
    *,
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    groups: Optional[List[SweepGroup]] = None,
) -> Dict[str, Any]:
    """Run the sweep and assemble the deterministic result document.

    The document is a pure function of ``(groups, seed)`` — it contains
    no timing, host, or job-count information, which is what lets
    ``--check`` assert byte-identity between ``--jobs N`` and serial.
    """
    if groups is None:
        groups = build_sweep(quick=quick, seed=seed)

    # one flat pool over every cell of every group: a straggler in one
    # group never idles workers that could be running another group.
    flat: List[SweepCell] = []
    offsets: List[int] = []
    for group in groups:
        offsets.append(len(flat))
        flat.extend(group.cells)
    results = run_cells(flat, jobs=jobs)

    figures: Dict[str, Any] = {}
    cell_index: List[Dict[str, Any]] = []
    for group, offset in zip(groups, offsets):
        group_results = results[offset : offset + len(group.cells)]
        for cell, result in zip(group.cells, group_results):
            cell_index.append(
                {
                    "label": cell.label,
                    "runner": cell.runner,
                    "n_nodes": cell.n_nodes,
                    "seed": cell.seed,
                    "events": result["events"],
                    "stats_sha256": result["stats_sha256"],
                }
            )
        if group.projections:
            metrics = [figure_metrics_from(r) for r in group_results]
            for figure_name, method in group.projections:
                figures[figure_name] = {
                    "x_label": group.x_label,
                    "xs": list(group.xs),
                    "series": _series_from([getattr(m, method)() for m in metrics]),
                }
        else:
            figures[group.name] = {
                "x_label": group.x_label,
                "xs": list(group.xs),
                "series": _series_from([r["values"] for r in group_results]),
            }

    return {
        "schema_version": SWEEP_SCHEMA_VERSION,
        "suite": SWEEP_SUITE,
        "profile": "quick" if quick else "full",
        "seed": seed,
        "figures": figures,
        "cells": cell_index,
    }


def sweep_to_json(doc: Dict[str, Any]) -> str:
    """Stable serialization: sorted keys, fixed indentation."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def run_sweep(
    *,
    jobs: int = 1,
    quick: bool = False,
    seed: int = 0,
    output: str = DEFAULT_SWEEP_PATH,
    check: bool = False,
    out: Optional[TextIO] = None,
) -> int:
    """Full ``repro sweep`` behaviour: run, write, optionally self-check.

    Timing and host facts are printed here and never enter the
    document.  With ``check`` the sweep re-runs serially and the two
    serializations are compared byte-for-byte; a mismatch returns exit
    code 1 (it would mean some cell is not a pure function of its spec
    — shared state leaked across cells).
    """
    out = out if out is not None else sys.stdout
    profile = "quick" if quick else "full"
    start = time.perf_counter()
    doc = sweep_document(quick=quick, seed=seed, jobs=jobs)
    wall = time.perf_counter() - start
    text = sweep_to_json(doc)
    path = Path(output)
    path.write_text(text)
    print(
        f"sweep: {len(doc['cells'])} cells (profile={profile}) with "
        f"jobs={jobs} in {wall:.2f}s on a {os.cpu_count()}-cpu host",
        file=out,
        flush=True,
    )
    print(f"sweep: results written to {path}", file=out, flush=True)
    if not check:
        return 0
    start = time.perf_counter()
    ref = sweep_to_json(sweep_document(quick=quick, seed=seed, jobs=1))
    serial_wall = time.perf_counter() - start
    if ref != text:
        print(
            "sweep: CHECK FAILED — parallel result differs from the serial "
            "reference (a cell is not a pure function of its spec)",
            file=out,
        )
        return 1
    print(
        f"sweep: check OK — jobs={jobs} byte-identical to serial "
        f"(serial wall {serial_wall:.2f}s vs {wall:.2f}s)",
        file=out,
    )
    return 0


# ----------------------------------------------------------------------
# bench-suite fan-out (`repro bench --jobs N`)
# ----------------------------------------------------------------------
def run_bench_scenarios(names: Iterable[str], *, quick: bool = False, jobs: int = 1):
    """Run named bench scenarios as cells; ScenarioResults in name order."""
    cells = [
        _cell(
            "bench_scenario",
            f"bench/{name}",
            name,
            0,
            0,
            quick=bool(quick),
        )
        for name in names
    ]
    return run_cells(cells, jobs=jobs)
