"""Finding records produced by the simlint rules.

A finding pins a rule violation to a file and line.  Its *fingerprint*
deliberately ignores the line **number** (only the stripped line text
participates), so baselines survive unrelated edits above a
grandfathered finding; moving or rewriting the offending line retires
the baseline entry and resurfaces the finding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "fingerprint", "format_finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The rule code, e.g. ``"D001"``.
    path:
        Path of the offending file, as given to the linter.
    line / col:
        1-based line and 0-based column of the flagged AST node.
    message:
        Human-readable explanation of the violation.
    line_text:
        The stripped source line, used for baseline fingerprints.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""


def _normalized_path(path: str) -> str:
    """``path`` relative to the current directory, in posix form.

    Fingerprints must be stable between machines and CI, so absolute
    prefixes are stripped whenever the file lies under the working
    directory (the normal case: ``python -m repro lint src`` from the
    repository root).
    """
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path(os.getcwd()).resolve())
    except ValueError:
        pass
    return p.as_posix()


def fingerprint(finding: Finding) -> str:
    """Line-number-independent identity of a finding, for baselines."""
    return f"{_normalized_path(finding.path)}::{finding.rule}::{finding.line_text}"


def format_finding(finding: Finding) -> str:
    """Render one finding in ``path:line:col: CODE message`` form."""
    return (
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule} {finding.message}"
    )
