"""The simlint rule catalog (D001–D014).

Each rule is an :class:`ast.NodeVisitor` with a code, a one-line title,
and a path scope.  Rules are registered in :data:`RULES` by the
``@register`` decorator; the engine (:mod:`repro.analysis.linter`)
instantiates every applicable rule per file and feeds it the parsed
tree.  The catalog, with rationale and examples, is documented in
DESIGN.md §7.

Scopes follow the determinism contract rather than blanket coverage:
wall-clock and hash-order rules (D002/D003) only bind inside the
simulated world (``sim``/``chord``/``core``), float-equality (D004)
inside routing and index math (``chord``/``core``), while RNG hygiene
(D001), kind registration (D005), payload-default safety (D006) and
registry/dispatch coherence (D007) apply everywhere outside test code;
performance-timer containment (D008) and process-spawn containment
(D009) apply everywhere except the sanctioned measurement and
orchestration homes (``repro/perf`` and ``benchmarks``); raw-send
containment (D010) binds inside ``chord``/``core`` outside the
overlay/runtime/reliable modules that *are* the sanctioned send path;
silent exception swallowing (D011) binds inside the simulated world
(``sim``/``chord``/``core``) where a dropped error means silently
corrupted protocol state rather than a visible crash; real-network
primitive containment (D012) bans ``socket``/``asyncio``/``threading``
imports everywhere except ``repro/net``, the transport seam's home;
mapping-mutation containment (D013) binds inside the simulated world
outside ``core/mapping.py``/``core/system.py``, the sanctioned remap
entry points (DESIGN.md §13); dict-state bound documentation (D014)
binds inside ``chord``, where per-node mappings multiply by N and an
undocumented key domain is how the N=5000 run once spent 60 % of its
RSS on a routing memo (PERFORMANCE.md §11).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from .findings import Finding

__all__ = ["LintRule", "RULES", "register", "all_rule_codes"]

RULES: Dict[str, Type["LintRule"]] = {}


def register(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator adding a rule to the :data:`RULES` registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rule_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    return sorted(RULES)


# ----------------------------------------------------------------------
# path scoping helpers
# ----------------------------------------------------------------------
def _parts(path: str) -> Tuple[str, ...]:
    return PurePosixPath(path.replace("\\", "/")).parts


def is_test_path(path: str) -> bool:
    """Whether a file is test code (exempt from determinism rules)."""
    parts = _parts(path)
    if any(part in ("tests", "test") for part in parts[:-1]):
        return True
    name = parts[-1] if parts else ""
    return name.startswith("test_") or name == "conftest.py"


def _in_packages(path: str, packages: Tuple[str, ...]) -> bool:
    return any(part in packages for part in _parts(path)[:-1])


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None


class LintRule(ast.NodeVisitor):
    """Base class for simlint rules.

    Subclasses set ``code``/``title``, override :meth:`applies_to` for
    their path scope, and call :meth:`report` from ``visit_*`` methods.
    """

    code = ""
    title = ""

    def __init__(self, path: str, source_lines: List[str]) -> None:
        self.path = path
        self._source_lines = source_lines
        self.findings: List[Finding] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether this rule binds for the given file path."""
        return not is_test_path(path)

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        text = ""
        if 1 <= line <= len(self._source_lines):
            text = self._source_lines[line - 1].strip()
        self.findings.append(
            Finding(
                rule=self.code,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                line_text=text,
            )
        )

    def run(self, tree: ast.Module) -> Iterator[Finding]:
        """Visit the tree and yield this rule's findings."""
        self.visit(tree)
        return iter(self.findings)


# ----------------------------------------------------------------------
# D001 — raw / global RNG use
# ----------------------------------------------------------------------
@register
class RawRngRule(LintRule):
    """Randomness must flow through named ``RngRegistry`` substreams.

    ``import random``, ``np.random.seed`` and ad-hoc
    ``np.random.default_rng(...)`` construction create streams outside
    the single-root-seed derivation, breaking the "a run is a pure
    function of (config, seed)" guarantee and the variance isolation
    the parameter sweeps rely on.  Only :mod:`repro.sim.rng` itself may
    construct generators.
    """

    code = "D001"
    title = "raw RNG construction outside sim/rng.py"

    _BANNED_SUFFIXES = (
        "np.random.seed",
        "np.random.default_rng",
        "np.random.RandomState",
        "numpy.random.seed",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.seed",
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        # The registry itself is the one sanctioned construction site.
        return not path.replace("\\", "/").endswith("sim/rng.py")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "import of the global `random` module; draw from a "
                    "named RngRegistry substream instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "import from the global `random` module; draw from a "
                "named RngRegistry substream instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for banned in self._BANNED_SUFFIXES:
                if dotted == banned or dotted.endswith("." + banned):
                    self.report(
                        node,
                        f"call to `{dotted}` constructs an unmanaged RNG; "
                        "use a named RngRegistry substream",
                    )
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D002 — wall-clock access inside the simulated world
# ----------------------------------------------------------------------
@register
class WallClockRule(LintRule):
    """Simulated components must use ``Simulator.now``, never real time.

    A wall-clock read makes behaviour depend on host speed and run
    timing — the exact nondeterminism a discrete-event simulation
    exists to remove.
    """

    code = "D002"
    title = "wall-clock access in sim/chord/core"

    _BANNED_CALLS = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    )
    _BANNED_FROM_IMPORTS = {
        "time": {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
        },
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not is_test_path(path) and _in_packages(
            path, ("sim", "chord", "core")
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        banned = self._BANNED_FROM_IMPORTS.get(node.module or "", set())
        for alias in node.names:
            if alias.name in banned:
                self.report(
                    node,
                    f"import of wall-clock `{node.module}.{alias.name}`; "
                    "simulated code must use Simulator.now",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for banned in self._BANNED_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    self.report(
                        node,
                        f"wall-clock call `{dotted}`; simulated code must "
                        "use Simulator.now",
                    )
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D003 — hash-order iteration in scheduling-adjacent code
# ----------------------------------------------------------------------
@register
class HashOrderIterationRule(LintRule):
    """Event ordering must never depend on set iteration order.

    Iterating a ``set``/``frozenset`` yields hash order, which for
    strings varies per process unless ``PYTHONHASHSEED`` is pinned;
    scheduling or sending messages in that order silently breaks
    reproducibility.  Wrap the iterable in ``sorted(...)`` (or keep a
    list/dict, which preserve insertion order).
    """

    code = "D003"
    title = "iteration over a set in scheduling-adjacent code"

    _SET_CALLS = {"set", "frozenset"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not is_test_path(path) and _in_packages(
            path, ("sim", "chord", "core")
        )

    def __init__(self, path: str, source_lines: List[str]) -> None:
        super().__init__(path, source_lines)
        # name -> is a set, per lexical scope (crude single-pass inference)
        self._scopes: List[Dict[str, bool]] = [{}]

    # -- scope bookkeeping ---------------------------------------------
    def _enter_scope(self) -> None:
        self._scopes.append({})

    def _exit_scope(self) -> None:
        self._scopes.pop()

    def _mark(self, name: str, is_set: bool) -> None:
        self._scopes[-1][name] = is_set

    def _is_set_name(self, name: str) -> bool:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    # -- set-expression classification ---------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._SET_CALLS
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra (| & - ^) keeps set-ness if either side is one
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._mark(target.id, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            ann = node.annotation
            ann_name = _dotted_name(ann) if not isinstance(ann, ast.Subscript) else (
                _dotted_name(ann.value)
            )
            by_annotation = ann_name is not None and ann_name.rsplit(".", 1)[
                -1
            ] in ("set", "Set", "frozenset", "FrozenSet")
            by_value = node.value is not None and self._is_set_expr(node.value)
            self._mark(node.target.id, by_annotation or by_value)
        self.generic_visit(node)

    # -- the actual checks ---------------------------------------------
    def _check_iterable(self, node: ast.AST, where: str) -> None:
        if self._is_set_expr(node):
            self.report(
                node,
                f"{where} iterates a set in hash order; wrap it in "
                "sorted(...) to fix the ordering",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a *new* set from a set is order-free; only flag when
        # the result is itself iterated (handled where it is consumed)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D004 — float equality in routing / index math
# ----------------------------------------------------------------------
@register
class FloatEqualityRule(LintRule):
    """``==``/``!=`` against float literals is a correctness smell.

    Key-range boundaries, distances and rates are accumulated floats;
    exact comparison makes behaviour depend on summation order and
    platform rounding.  Compare with a tolerance, or suppress inline
    when the literal is a genuine sentinel.
    """

    code = "D004"
    title = "float == / != comparison in chord/core"

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not is_test_path(path) and _in_packages(path, ("chord", "core"))

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return FloatEqualityRule._is_float_literal(node.operand)
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_float_literal(operands[i]) or self._is_float_literal(
                operands[i + 1]
            ):
                self.report(
                    node,
                    "float equality comparison; use a tolerance or an "
                    "integer/sentinel representation",
                )
                break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D005 — message kinds must come from the protocol registry
# ----------------------------------------------------------------------
@register
class UnknownKindRule(LintRule):
    """Message kinds must be declared in ``core/protocol.py``.

    Every Fig. 6–8 metric is an aggregation over message *kinds*; an
    invented kind string would flow through :meth:`Network.hop` but fall
    outside every figure component — traffic silently escaping the
    paper's accounting.
    """

    code = "D005"
    title = "message kind not declared in the protocol registry"

    _KIND_KEYWORDS = ("kind", "transit_kind", "span_kind")

    def __init__(self, path: str, source_lines: List[str]) -> None:
        super().__init__(path, source_lines)
        self._module_strs: Dict[str, str] = {}

    @staticmethod
    def _known_kinds() -> Set[str]:
        from ..core.protocol import KNOWN_KINDS

        return set(KNOWN_KINDS)

    def visit_Module(self, node: ast.Module) -> None:
        # module-level NAME = "literal" constants, so `Message(kind=NAME)`
        # resolves even when the code aliases a kind string
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._module_strs[target.id] = stmt.value.value
        self.generic_visit(node)

    def _kind_value(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """``(kind, how)`` when the expression statically names a kind."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, "literal"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "KIND"
        ):
            from ..core.protocol import KIND

            value = getattr(KIND, node.attr, None)
            if isinstance(value, str):
                return value, "attribute"
            return f"KIND.{node.attr}", "missing-attribute"
        if isinstance(node, ast.Name) and node.id in self._module_strs:
            return self._module_strs[node.id], "constant"
        return None

    def _check_kind_expr(self, node: ast.AST) -> None:
        resolved = self._kind_value(node)
        if resolved is None:
            return
        kind, how = resolved
        if how == "missing-attribute":
            self.report(node, f"`{kind}` is not defined on the KIND registry")
            return
        if kind not in self._known_kinds():
            self.report(
                node,
                f"message kind {kind!r} is not declared in "
                "repro.core.protocol.KNOWN_KINDS; traffic under it would "
                "escape the paper's accounting",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func_name = _dotted_name(node.func) or ""
        tail = func_name.rsplit(".", 1)[-1]
        if tail == "derive" and node.args:
            # Message.derive(kind, ...) takes the kind positionally
            self._check_kind_expr(node.args[0])
        for kw in node.keywords:
            if kw.arg in self._KIND_KEYWORDS:
                self._check_kind_expr(kw.value)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D006 — mutable defaults on payload dataclasses
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(LintRule):
    """Dataclass fields must not share mutable default instances.

    ``dataclasses`` rejects plain ``list``/``dict``/``set`` defaults but
    happily shares a single ``deque()``, ``Counter()`` or ``np.zeros``
    instance across every payload — one receiver mutating its message
    then mutates everyone's.  Use ``field(default_factory=...)``.
    """

    code = "D006"
    title = "mutable default on a dataclass field"

    _IMMUTABLE_CALLS = {"float", "int", "str", "bool", "bytes", "tuple", "frozenset"}

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted_name(target) or ""
            if name.rsplit(".", 1)[-1] == "dataclass":
                return True
        return False

    def _flag_default(self, stmt: ast.AnnAssign, value: ast.AST) -> None:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            self.report(stmt, "mutable literal default; use field(default_factory=...)")
            return
        if isinstance(value, ast.Call):
            name = _dotted_name(value.func) or ""
            tail = name.rsplit(".", 1)[-1]
            if tail == "field":
                for kw in value.keywords:
                    if kw.arg == "default" and (
                        isinstance(kw.value, (ast.List, ast.Dict, ast.Set, ast.Call))
                    ):
                        self.report(
                            stmt,
                            "field(default=...) with a mutable value; use "
                            "field(default_factory=...)",
                        )
                return
            if tail not in self._IMMUTABLE_CALLS:
                self.report(
                    stmt,
                    f"default constructed by `{name}()` is shared across "
                    "instances; use field(default_factory=...)",
                )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_dataclass(node):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    self._flag_default(stmt, stmt.value)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D007 — protocol registry and @handles dispatch must stay in sync
# ----------------------------------------------------------------------
@register
class ProtocolRegistryRule(LintRule):
    """Payload metadata and handler registration must agree with the registry.

    Delivery policy (dedup, acks) lives on each payload type's
    ``@payload(...)`` registration in ``core/protocol.py``; the runtime,
    the invariant checker and the docs all read that one registry.  Two
    kinds of drift would silently undermine it:

    * a payload dataclass added to ``core/protocol.py`` without
      ``@payload(...)`` metadata — it would fall into the
      unknown-payload fallback with no declared policy;
    * an ``@handles(X)`` registration naming a class that is not a
      registered payload type — the handler could never fire (the
      dispatch table also rejects this at construction; the rule
      catches it before anything runs).
    """

    code = "D007"
    title = "protocol registry / @handles dispatch drift"

    #: dataclasses in core/protocol.py that are not wire payloads
    _EXEMPT_DATACLASSES = {"PayloadSpec"}

    @staticmethod
    def _registered_payload_names() -> Set[str]:
        from ..core.protocol import PAYLOAD_REGISTRY

        return {cls.__name__ for cls in PAYLOAD_REGISTRY}

    def _is_protocol_module(self) -> bool:
        return self.path.replace("\\", "/").endswith("core/protocol.py")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_protocol_module():
            deco_tails = set()
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = _dotted_name(target) or ""
                deco_tails.add(name.rsplit(".", 1)[-1])
            if (
                "dataclass" in deco_tails
                and "payload" not in deco_tails
                and node.name not in self._EXEMPT_DATACLASSES
            ):
                self.report(
                    node,
                    f"payload dataclass `{node.name}` declares no "
                    "@payload(...) registry metadata (kind / dedup / ack "
                    "policy)",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            name = _dotted_name(deco.func) or ""
            if name.rsplit(".", 1)[-1] != "handles":
                continue
            if not deco.args:
                self.report(deco, "@handles(...) names no payload type")
                continue
            arg_name = _dotted_name(deco.args[0])
            if arg_name is None:
                self.report(
                    deco,
                    "@handles argument must be a payload class name so the "
                    "registry link is statically checkable",
                )
                continue
            if arg_name.rsplit(".", 1)[-1] not in self._registered_payload_names():
                self.report(
                    deco,
                    f"@handles({arg_name}) references a type not registered "
                    "in the protocol registry",
                )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


# ----------------------------------------------------------------------
# D008 — performance timers only in the perf layer and benchmarks
# ----------------------------------------------------------------------
@register
class PerfTimerContainmentRule(LintRule):
    """Wall-clock *performance* timers live in ``repro/perf`` and ``benchmarks``.

    D002 keeps wall clocks out of the simulated world (``sim`` / ``chord``
    / ``core``); this rule covers the rest of the tree.  Measurement code
    scattered through analysis or CLI layers drifts: numbers get produced
    outside the schema-versioned bench report and outside the regression
    gate.  ``time.perf_counter`` / ``time.process_time`` (and ``_ns``
    variants) are therefore contained to the two sanctioned homes — the
    :mod:`repro.perf` harness and the ``benchmarks/`` suite — so every
    timing claim in the repo flows through one measured, comparable path
    (PERFORMANCE.md).
    """

    code = "D008"
    title = "perf timer outside repro/perf and benchmarks"

    _BANNED_CALLS = (
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    )
    _BANNED_FROM_TIME = {
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        # sim/chord/core are D002's territory (any wall clock, not just
        # perf timers); flagging them here too would double-report.
        if _in_packages(path, ("sim", "chord", "core")):
            return False
        return not _in_packages(path, ("perf", "benchmarks"))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in self._BANNED_FROM_TIME:
                    self.report(
                        node,
                        f"import of perf timer `time.{alias.name}`; timing "
                        "belongs in repro/perf or benchmarks/ "
                        "(see PERFORMANCE.md)",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for banned in self._BANNED_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    self.report(
                        node,
                        f"perf timer call `{dotted}` outside repro/perf and "
                        "benchmarks/; route measurement through the bench "
                        "harness (see PERFORMANCE.md)",
                    )
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D009 — process spawning only in the perf layer and benchmarks
# ----------------------------------------------------------------------
@register
class ProcessSpawnContainmentRule(LintRule):
    """Worker processes are spawned in ``repro/perf`` and ``benchmarks`` only.

    The sweep fan-out (:mod:`repro.perf.parallel`) is deliberately the
    single place that forks: its merge step is what guarantees parallel
    results are byte-identical to serial ones (results reassembled in
    cell order, every cell a pure function of its picklable spec).  A
    ``multiprocessing`` import or ``os.fork`` elsewhere would create a
    second fan-out path without that contract — completion-order
    merges, shared-state mutation across forks, and RNG streams split
    outside the per-cell registries are exactly the nondeterminism this
    codebase exists to exclude.  Route parallelism through
    ``repro.perf.parallel.run_cells`` instead.
    """

    code = "D009"
    title = "process spawning outside repro/perf and benchmarks"

    _BANNED_MODULES = {"multiprocessing"}
    _BANNED_CALLS = ("os.fork", "os.forkpty")
    _BANNED_OS_NAMES = {"fork", "forkpty"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        return not _in_packages(path, ("perf", "benchmarks"))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in self._BANNED_MODULES:
                self.report(
                    node,
                    f"import of `{alias.name}` outside repro/perf and "
                    "benchmarks/; fan work out through "
                    "repro.perf.parallel.run_cells",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module.split(".")[0] in self._BANNED_MODULES:
            self.report(
                node,
                f"import from `{module}` outside repro/perf and "
                "benchmarks/; fan work out through "
                "repro.perf.parallel.run_cells",
            )
        elif module == "os":
            for alias in node.names:
                if alias.name in self._BANNED_OS_NAMES:
                    self.report(
                        node,
                        f"import of `os.{alias.name}` outside repro/perf "
                        "and benchmarks/; fan work out through "
                        "repro.perf.parallel.run_cells",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for banned in self._BANNED_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    self.report(
                        node,
                        f"process fork `{dotted}` outside repro/perf and "
                        "benchmarks/; fan work out through "
                        "repro.perf.parallel.run_cells",
                    )
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D010 — raw network transmission outside the overlay/runtime layer
# ----------------------------------------------------------------------
@register
class RawNetworkSendRule(LintRule):
    """Physical sends go through the overlay / reliable / dispatch path.

    Every message the simulated fabric carries must be observable by
    the reliability layer (retransmission, dead-letter accounting) and
    the dispatch layer (dedup, acks) — that is what makes the
    availability figures trustworthy and the replication subsystem's
    at-most-once installs sound.  A direct ``*.network.hop(...)`` or
    ``*.network.local(...)`` call anywhere else creates traffic those
    layers never see.  Sanctioned homes: :mod:`repro.sim` (the fabric
    itself), :mod:`repro.chord.dht` (the overlay's routing primitives),
    :mod:`repro.core.runtime` and :mod:`repro.core.reliable` (dispatch
    and retry).  Anything else routes via
    ``NodeRuntime.reliable_route`` / ``DhtOverlay.route`` /
    ``DhtOverlay.send_direct``, or carries an inline justification.
    """

    code = "D010"
    title = "raw network send outside the overlay/runtime layer"

    _BANNED_SUFFIXES = ("network.hop", "network.local")
    _SANCTIONED = ("core/runtime.py", "core/reliable.py", "chord/dht.py")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        if not _in_packages(path, ("sim", "chord", "core")):
            return False
        if _in_packages(path, ("sim",)):
            return False  # the fabric's own implementation
        normalized = "/".join(_parts(path))
        return not any(normalized.endswith(s) for s in cls._SANCTIONED)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for suffix in self._BANNED_SUFFIXES:
                if dotted == suffix or dotted.endswith("." + suffix):
                    self.report(
                        node,
                        f"raw network send `{dotted}(...)` bypasses the "
                        "reliable/dispatch path; route via "
                        "NodeRuntime.reliable_route or the DhtOverlay "
                        "primitives",
                    )
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D011 — silent exception swallowing inside the simulated world
# ----------------------------------------------------------------------
@register
class SilentExceptionRule(LintRule):
    """No bare ``except:`` or swallowed ``except Exception:`` in sim code.

    The simulated world is deterministic by construction, so an
    exception there is a *logic bug*, never an environmental hiccup to
    shrug off.  A bare ``except:`` (which also eats ``KeyboardInterrupt``
    and ``SystemExit``) or an ``except Exception: pass`` turns that bug
    into silently corrupted protocol state — messages half-applied,
    counters off by one — that surfaces runs later as an invariant
    violation nobody can trace.  Catch a *specific* exception, or handle
    the broad one visibly (re-raise, record, or repair state, as
    ``chord/stabilize.py`` does).
    """

    code = "D011"
    title = "silently swallowed exception in sim/chord/core"

    _BROAD_NAMES = {"Exception", "BaseException"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not is_test_path(path) and _in_packages(
            path, ("sim", "chord", "core")
        )

    @staticmethod
    def _is_noop_body(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                # bare `...` or a docstring-style literal — still a no-op
                continue
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` swallows every exception including "
                "KeyboardInterrupt; catch a specific exception type",
            )
        else:
            name = _dotted_name(node.type) or ""
            if (
                name.rsplit(".", 1)[-1] in self._BROAD_NAMES
                and self._is_noop_body(node.body)
            ):
                self.report(
                    node,
                    f"`except {name}:` with a no-op body silently discards "
                    "a logic bug; handle it visibly or catch a specific "
                    "exception type",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D012 — real-network primitives only inside repro/net
# ----------------------------------------------------------------------
@register
class NetworkPrimitiveContainmentRule(LintRule):
    """``socket`` / ``asyncio`` / ``threading`` live in ``repro/net`` only.

    The transport seam (:mod:`repro.net.transport`) exists so that every
    role service, the reliable sender and the runtime are portable
    between the deterministic simulator and the asyncio peer runtime —
    which holds only if nothing outside :mod:`repro.net` touches real
    I/O or concurrency primitives.  A ``socket`` import in a role
    service would hard-wire it to one transport; an ``asyncio`` or
    ``threading`` import introduces wall-clock scheduling and
    interleaving the simulator cannot replay, silently voiding the
    byte-identity guarantee the sweep results rest on.  Talk to
    :class:`repro.net.transport.Transport` instead, or put genuinely
    transport-specific code under ``repro/net``.
    """

    code = "D012"
    title = "socket/asyncio/threading import outside repro/net"

    _BANNED_MODULES = {"socket", "asyncio", "threading"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        return not _in_packages(path, ("net",))

    def _flag(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"import of `{module}` outside repro/net/; role services and "
            "runtime code talk to the Transport seam "
            "(repro.net.transport.Transport), transport-specific code "
            "belongs under repro/net/",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in self._BANNED_MODULES:
                self._flag(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module.split(".")[0] in self._BANNED_MODULES:
            self._flag(node, module)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D013 — mapping-state mutation outside sanctioned remap entry points
# ----------------------------------------------------------------------
@register
class MappingMutationRule(LintRule):
    """Remapping happens only through the sanctioned epoch-bump path.

    The adaptive mapping (DESIGN.md §13) is *shared routing state*:
    every source, client and holder derives keys from ``system.mapper``,
    and the placement invariant tolerates a stale placement only because
    each epoch bump flows through ``AdaptiveQuantileMapper.refit``
    (which retains the superseded epoch) inside
    ``StreamIndexSystem.run_adaptive_refit`` (which then triggers
    ``MbrMigrate`` re-placement).  A rogue ``*.refit(...)`` call or a
    direct write to ``*.mapper`` / ``*._epochs`` / ``*._edges`` anywhere
    else re-keys the ring with no epoch history and no migration, so
    already-stored MBRs silently become unreachable to new queries —
    routing still succeeds, it just lands somewhere the data isn't.
    Sanctioned homes: :mod:`repro.core.mapping` (the epoch machinery
    itself) and :mod:`repro.core.system` (mapper construction and the
    refit round).  Everything else treats the mapper as read-only and
    requests a remap via ``StreamIndexSystem.run_adaptive_refit``.
    """

    code = "D013"
    title = "mapping-state mutation outside sanctioned remap entry points"

    _BANNED_CALL_SUFFIXES = ("refit",)
    _BANNED_TARGET_SUFFIXES = ("mapper", "_epochs", "_edges")
    _SANCTIONED = ("core/mapping.py", "core/system.py")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if is_test_path(path):
            return False
        if not _in_packages(path, ("sim", "chord", "core")):
            return False
        normalized = "/".join(_parts(path))
        return not any(normalized.endswith(s) for s in cls._SANCTIONED)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            for suffix in self._BANNED_CALL_SUFFIXES:
                if dotted == suffix or dotted.endswith("." + suffix):
                    self.report(
                        node,
                        f"direct remap `{dotted}(...)` bypasses epoch "
                        "bookkeeping and migration; request remaps via "
                        "StreamIndexSystem.run_adaptive_refit",
                    )
                    break
        self.generic_visit(node)

    def _check_target(self, node: ast.AST, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        dotted = _dotted_name(target)
        if dotted is None:
            return
        for suffix in self._BANNED_TARGET_SUFFIXES:
            if dotted.endswith("." + suffix):
                self.report(
                    node,
                    f"write to mapping state `{dotted}` outside the "
                    "sanctioned remap entry points (core/mapping.py, "
                    "core/system.py); the mapper is read-only shared "
                    "routing state everywhere else",
                )
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# D014 — undocumented dict-state bound inside chord/
# ----------------------------------------------------------------------
@register
class UnboundedNodeDictRule(LintRule):
    """Dict state seeded in ``chord/`` must document what bounds it.

    Everything in ``chord/`` is instantiated once per node (or once per
    ring shared by every node), so a mapping whose key domain is
    workload-sized — keys looked up, messages seen, queries routed —
    multiplies by N and grows for the life of the run.  That is exactly
    how the old per-key routing memo came to dominate peak RSS at
    N = 5000: ~40 k entries *per node*, ~2 M total, for a cache that
    still missed 85 % of lookups (PERFORMANCE.md §11).  Dicts keyed by
    ring membership are fine — they cannot outgrow N — but the reader
    (and this rule) cannot tell the two apart from the seed expression
    alone.  So: every ``self.<attr>`` assignment that seeds a dict
    (``{}``, ``dict()``, ``defaultdict(...)``) must carry a comment on
    the same line or within the three lines above naming the bound —
    any comment containing "bounded" or "capped" satisfies the rule,
    e.g. ``#: bounded: one entry per live member node``.  State that
    cannot honestly claim a bound should be keyed by routing state
    (epoch-invalidated, like the arc memo) or evicted explicitly.
    """

    code = "D014"
    title = "undocumented dict-state bound inside chord/"

    _WITNESS = ("bounded", "capped")

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not is_test_path(path) and _in_packages(path, ("chord",))

    def _has_bound_witness(self, lineno: int) -> bool:
        lo = max(0, lineno - 4)  # the seed line plus three lines above
        for line in self._source_lines[lo:lineno]:
            if "#" in line:
                comment = line.split("#", 1)[1].lower()
                if any(word in comment for word in self._WITNESS):
                    return True
        return False

    def _seeds_dict(self, value: ast.expr) -> bool:
        for node in ast.walk(value):
            if isinstance(node, ast.Dict) and not node.keys:
                return True
            if isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name == "dict" and not node.args and not node.keywords:
                    return True
                if name in ("defaultdict", "collections.defaultdict"):
                    return True
        return False

    def _check(self, node: ast.AST, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
            return
        if not self._seeds_dict(value):
            return
        if self._has_bound_witness(getattr(node, "lineno", 1)):
            return
        self.report(
            node,
            f"dict state `self.{target.attr}` has no documented bound; "
            "per-node mappings in chord/ multiply by N — add a comment "
            "naming the bound (\"bounded: ...\"/\"capped: ...\") or key "
            "it by epoch-invalidated routing state",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(node, target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check(node, node.target, node.value)
        self.generic_visit(node)
