"""The typed message-flow graph behind ``repro flow`` (DESIGN.md §11).

The graph is the static counterpart of the runtime protocol: its nodes
are ``role × payload`` *actions* — a role sending a payload type, or a
role handling one — and its edges are the two ways control crosses a
node boundary:

* **delivery edges** connect every send action of a payload to every
  handler action of the same payload (``send(r, P) -> handle(h, P)``):
  content routing decides the receiver at runtime, so statically any
  handler of ``P`` is reachable from any sender;
* **emit edges** connect a handler action to every send action its role
  performs (``handle(h, P) -> send(h, Q)``): role granularity is a
  deliberate over-approximation — a role that *can* send ``Q`` from any
  of its methods is assumed able to send it while reacting to ``P``.

Reachability over this graph is what the F004 response-path check walks,
and the node/edge sets are what ``repro flow --dot`` renders.  The raw
material (payload declarations, send sites, handler sites, post-
construction mutations) is extracted statically by
:mod:`repro.analysis.flow` — this module only holds the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = [
    "PayloadDecl",
    "SendSite",
    "HandlerSite",
    "MutationSite",
    "FlowNode",
    "MessageFlowGraph",
]


@dataclass(frozen=True)
class PayloadDecl:
    """One ``@payload``-decorated class, as read from the AST.

    Mirrors :class:`repro.core.protocol.PayloadSpec` plus the source
    location of the declaration, so registry-level findings (F001,
    F003, F004) can be pinned to the class definition line.
    """

    name: str
    kind: str
    dedup: bool
    ack_on_delivery: bool
    ack_kinds: FrozenSet[str]
    senders: FrozenSet[str]
    response: Optional[str]
    flow: str
    path: str
    line: int
    line_text: str = ""


@dataclass(frozen=True)
class SendSite:
    """One statically attributed send of a concrete payload type.

    ``role`` is the sending role resolved from the enclosing class's
    ``role`` attribute or the module's ``FLOW_ROLE`` marker; ``None``
    when the site could not be attributed (such sites still count as
    send sites for F001, but are exempt from the F002 legality check).
    ``var`` is the local name the payload travelled under (empty for a
    constructor passed inline), used to pair sends with mutations.
    """

    payload: str
    role: Optional[str]
    path: str
    line: int
    col: int
    func: str
    var: str = ""
    line_text: str = ""


@dataclass(frozen=True)
class HandlerSite:
    """One ``@handles(P)`` registration inside a role class."""

    payload: str
    role: str
    path: str
    line: int
    col: int
    owner: str
    line_text: str = ""


@dataclass(frozen=True)
class MutationSite:
    """A payload field assigned after construction on a send path.

    Only recorded when the mutated local is *also* used at a send site
    in the same (outermost) function scope — a constructed payload that
    never reaches the wire may be freely adjusted.
    """

    payload: str
    var: str
    attr: str
    role: Optional[str]
    path: str
    line: int
    col: int
    func: str
    line_text: str = ""


#: one graph node: ``(action, role, payload)`` with action "send"/"handle"
FlowNode = Tuple[str, str, str]


@dataclass
class MessageFlowGraph:
    """The assembled whole-program protocol-flow graph."""

    payloads: Dict[str, PayloadDecl] = field(default_factory=dict)
    sends: List[SendSite] = field(default_factory=list)
    handlers: List[HandlerSite] = field(default_factory=list)
    #: post-construction mutations already paired with a send of the
    #: same local (the raw material of F005)
    mutations: List[MutationSite] = field(default_factory=list)

    # ------------------------------------------------------------------
    # per-payload accessors
    # ------------------------------------------------------------------
    def sends_of(self, payload: str) -> List[SendSite]:
        """Every send site attributed to ``payload``."""
        return [s for s in self.sends if s.payload == payload]

    def handlers_of(self, payload: str) -> List[HandlerSite]:
        """Every handler registration for ``payload``."""
        return [h for h in self.handlers if h.payload == payload]

    def send_roles(self, payload: str) -> List[str]:
        """Sorted roles observed sending ``payload`` (attributed only)."""
        return sorted(
            {s.role for s in self.sends_of(payload) if s.role is not None}
        )

    def handler_roles(self, payload: str) -> List[str]:
        """Sorted roles registering a handler for ``payload``."""
        return sorted({h.role for h in self.handlers_of(payload)})

    # ------------------------------------------------------------------
    # graph structure
    # ------------------------------------------------------------------
    def nodes(self) -> List[FlowNode]:
        """All role×payload action nodes, sorted."""
        out: Set[FlowNode] = set()
        for send in self.sends:
            if send.role is not None:
                out.add(("send", send.role, send.payload))
        for handler in self.handlers:
            out.add(("handle", handler.role, handler.payload))
        return sorted(out)

    def edges(self) -> List[Tuple[FlowNode, FlowNode]]:
        """Delivery plus emit edges, sorted (see module docstring)."""
        out: Set[Tuple[FlowNode, FlowNode]] = set()
        sends_by_role: Dict[str, Set[str]] = {}
        for send in self.sends:
            if send.role is not None:
                sends_by_role.setdefault(send.role, set()).add(send.payload)
        for name in self.payloads:
            send_nodes = [
                ("send", role, name) for role in self.send_roles(name)
            ]
            handle_nodes = [
                ("handle", role, name) for role in self.handler_roles(name)
            ]
            for src in send_nodes:
                for dst in handle_nodes:
                    out.add((src, dst))
        for handler in self.handlers:
            for emitted in sends_by_role.get(handler.role, ()):
                out.add(
                    (
                        ("handle", handler.role, handler.payload),
                        ("send", handler.role, emitted),
                    )
                )
        return sorted(out)

    def reachable_from(self, starts: Iterable[FlowNode]) -> Set[FlowNode]:
        """All nodes reachable from ``starts`` along graph edges."""
        adjacency: Dict[FlowNode, List[FlowNode]] = {}
        for src, dst in self.edges():
            adjacency.setdefault(src, []).append(dst)
        seen: Set[FlowNode] = set(starts)
        frontier: List[FlowNode] = list(seen)
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """The graph in Graphviz DOT form (``repro flow --dot``)."""

        def node_id(node: FlowNode) -> str:
            action, role, name = node
            return f'"{action}:{role}:{name}"'

        lines = [
            "digraph message_flow {",
            "  rankdir=LR;",
            '  node [fontname="Helvetica"];',
        ]
        for node in self.nodes():
            action, role, name = node
            shape = "box" if action == "send" else "ellipse"
            label = f"{role}\\n{action} {name}"
            lines.append(
                f"  {node_id(node)} [shape={shape}, label=\"{label}\"];"
            )
        for src, dst in self.edges():
            style = "solid" if src[0] == "send" else "dashed"
            lines.append(
                f"  {node_id(src)} -> {node_id(dst)} [style={style}];"
            )
        lines.append("}")
        return "\n".join(lines) + "\n"
