"""Runtime invariants: ring health, index placement, message conservation.

Complementing the static rules, these predicates check properties only a
*running* system exhibits:

* **Ring health** (:func:`check_ring`) — every live node's successor and
  predecessor match the ground-truth ring order, finger ``i`` points at
  the true successor of ``n + 2**i``, and key-space ownership partitions
  the circle (each node owns exactly ``(predecessor, self]``).
* **Index placement** (:func:`check_index_placement`) — every live
  (non-expired) MBR sits on a node whose ownership arc intersects the
  MBR's routing key range, i.e. content-based routing delivered each
  summary where a range query would look for it.
* **Message conservation** (:func:`check_message_conservation`) — every
  physical transmission is accounted for exactly once:
  ``sends + duplicates + in_flight_at_reset ==
  receives + drops + in_flight``.
* **Delivery policy** (:func:`check_delivery_policy`) — every node's
  dispatch table covers the whole protocol registry (each registered
  payload type has exactly one role handler; ``Ack`` is consumed by the
  runtime itself), and the receive-side dedup memory respects its
  configured bound.  Runtime, registry and dispatch must agree — the
  same single-source-of-truth property simlint D007 enforces
  statically.

:func:`check_invariants` bundles all three over a
:class:`~repro.core.system.StreamIndexSystem`; :func:`assert_invariants`
raises with a readable summary, for tests and the ``--check-invariants``
CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..chord.ring import ChordRing
    from ..core.system import StreamIndexSystem
    from ..sim.network import Network

__all__ = [
    "Violation",
    "InvariantReport",
    "check_ring",
    "check_physical_ownership",
    "check_index_placement",
    "check_message_conservation",
    "check_delivery_policy",
    "check_replica_placement",
    "check_invariants",
    "assert_invariants",
    "InvariantError",
]


class InvariantError(AssertionError):
    """Raised by :func:`assert_invariants` when a check fails."""


@dataclass(frozen=True)
class Violation:
    """One failed invariant.

    Attributes
    ----------
    check:
        Which checker found it: ``"ring"``, ``"index"``, ``"messages"``.
    subject:
        The entity involved, e.g. ``"N1234"`` or ``"stream-3"``.
    message:
        What is wrong, with the expected and observed values.
    """

    check: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep.

    ``checks_run`` counts individual predicates evaluated, so an
    all-clear report still shows the sweep did real work.
    """

    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """Whether every evaluated predicate held."""
        return not self.violations

    def summary(self, limit: int = 20) -> str:
        """Human-readable multi-line outcome."""
        if self.ok:
            return f"invariants OK ({self.checks_run} checks)"
        head = (
            f"{len(self.violations)} invariant violation(s) "
            f"in {self.checks_run} checks:"
        )
        lines = [head] + [f"  {v}" for v in self.violations[:limit]]
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# ring health
# ----------------------------------------------------------------------
def check_ring(
    ring: "ChordRing", *, fingers: bool = True
) -> InvariantReport:
    """Check every live node's routing state against ring ground truth.

    With ``fingers=False`` only the correctness-critical successor /
    predecessor / ownership invariants are checked — fingers are an
    optimisation and legitimately lag behind during active churn.
    """
    report = InvariantReport()
    ids = ring.node_ids
    n = len(ids)
    if n == 0:
        report.checks_run += 1
        report.violations.append(
            Violation("ring", "ring", "ring has no live members")
        )
        return report

    for idx, node_id in enumerate(ids):
        node = ring.node(node_id)
        label = f"N{node_id}"
        true_succ = ring.node(ids[(idx + 1) % n])
        true_pred = ring.node(ids[(idx - 1) % n])

        report.checks_run += 1
        if node.successor is not true_succ:
            got = f"N{node.successor.node_id}" if node.successor else "None"
            report.violations.append(
                Violation(
                    "ring",
                    label,
                    f"successor is {got}, expected N{true_succ.node_id}",
                )
            )
        report.checks_run += 1
        if node.predecessor is not true_pred:
            got = f"N{node.predecessor.node_id}" if node.predecessor else "None"
            report.violations.append(
                Violation(
                    "ring",
                    label,
                    f"predecessor is {got}, expected N{true_pred.node_id}",
                )
            )

        # ownership partition: exactly the arc (predecessor, self]
        report.checks_run += 1
        if not node.owns_key(node.node_id):
            report.violations.append(
                Violation("ring", label, "node does not own its own identifier")
            )
        if n > 1:
            probe = (true_pred.node_id + 1) % ring.space.size
            report.checks_run += 1
            if not node.owns_key(probe):
                report.violations.append(
                    Violation(
                        "ring",
                        label,
                        f"node does not own key {probe} at the start of its arc",
                    )
                )
            report.checks_run += 1
            if node.owns_key(true_pred.node_id):
                report.violations.append(
                    Violation(
                        "ring",
                        label,
                        f"node claims key {true_pred.node_id}, owned by its "
                        "predecessor",
                    )
                )
            report.checks_run += 1
            if true_succ.owns_key(node.node_id):
                report.violations.append(
                    Violation(
                        "ring",
                        label,
                        f"successor N{true_succ.node_id} also claims key "
                        f"{node.node_id}",
                    )
                )

        if fingers:
            for i in range(ring.space.m):
                report.checks_run += 1
                expected = ring.successor_of_key(node.finger_start(i))
                if node.fingers[i] is not expected:
                    got = (
                        f"N{node.fingers[i].node_id}"
                        if node.fingers[i] is not None
                        else "None"
                    )
                    report.violations.append(
                        Violation(
                            "ring",
                            label,
                            f"finger[{i}] is {got}, expected "
                            f"N{expected.node_id}",
                        )
                    )
    return report


# ----------------------------------------------------------------------
# per-physical ownership (virtual nodes, DESIGN.md §13)
# ----------------------------------------------------------------------
def check_physical_ownership(ring: "ChordRing") -> InvariantReport:
    """Check that per-physical token arcs partition the circle.

    Under virtual nodes a physical node's ownership is the *union* of
    its tokens' ``(predecessor, self]`` arcs.  Aggregated per physical
    node, those unions must still partition the identifier circle:
    every physical node's arc widths sum to a positive share, and the
    shares of all physical nodes sum to exactly ``2**m``.  Each token
    must also carry a stable ``physical_name`` and never be counted
    under two physical nodes (the naming scheme in
    :mod:`repro.chord.vnodes` guarantees this; the check catches
    hand-built rings that violate it).  Without virtual nodes every
    physical group has exactly one token and this reduces to the
    ownership-partition clause of :func:`check_ring`.
    """
    from ..chord.vnodes import VirtualNodeMap

    report = InvariantReport()
    ids = ring.node_ids
    n = len(ids)
    if n == 0:
        report.checks_run += 1
        report.violations.append(
            Violation("ring", "ring", "ring has no live members")
        )
        return report

    vmap = VirtualNodeMap()
    for node in ring:
        vmap.register(node)
    size = ring.space.size
    arc_width = {}
    for idx, node_id in enumerate(ids):
        pred_id = ids[(idx - 1) % n]
        # a single-token ring owns the full circle, not a zero arc
        width = (node_id - pred_id) % size or size
        arc_width[node_id] = width

    total = 0
    for phys in vmap.physical_names():
        tokens = vmap.tokens_of(phys)
        report.checks_run += 1
        live = [t for t in tokens if t in arc_width]
        if not live:
            report.violations.append(
                Violation(
                    "ring", phys, "physical node has no live tokens on the ring"
                )
            )
            continue
        share = sum(arc_width[t] for t in live)
        total += share
        report.checks_run += 1
        if not (0 < share <= size):
            report.violations.append(
                Violation(
                    "ring",
                    phys,
                    f"aggregated arc share {share} outside (0, {size}]",
                )
            )
        # every live token of this physical group reports the same owner
        for t in live:
            report.checks_run += 1
            owner = ring.node(t).physical_name
            if owner != phys:
                report.violations.append(
                    Violation(
                        "ring",
                        f"N{t}",
                        f"token registered under {phys!r} but carries "
                        f"physical_name {owner!r}",
                    )
                )

    report.checks_run += 1
    if total != size:
        report.violations.append(
            Violation(
                "ring",
                "ring",
                f"per-physical arc shares sum to {total}, expected {size} "
                "(ownership does not partition the circle)",
            )
        )
    return report


# ----------------------------------------------------------------------
# index placement
# ----------------------------------------------------------------------
def check_index_placement(
    system: "StreamIndexSystem", *, now: Optional[float] = None
) -> InvariantReport:
    """Check each live MBR sits inside its holder's routed key range.

    Content-based routing (Eq. 6) sends an MBR whose first-coordinate
    interval maps to keys ``[klow, khigh]`` to every node covering that
    range; a stored MBR on a node outside the covering set would be
    invisible to exactly the queries it should answer.  Expired MBRs are
    ignored: soft state left behind by churn is *expected* to be stale
    until BSPAN retires it.

    Under adaptive remapping (DESIGN.md §13) a placement is accepted if
    it is valid under *any* retained mapping epoch: entries published
    before a refit legitimately sit where the old epoch routed them
    until migration or BSPAN expiry moves them on.
    """
    report = InvariantReport()
    now = system.sim.now if now is None else now
    ring = system.ring
    # every retained epoch's mapper for an adaptive mapper, else just
    # the one static mapper
    mappers = (
        list(system.mapper.mappers())
        if hasattr(system.mapper, "mappers")
        else [system.mapper]
    )
    for app in system.all_apps:
        if not app.node.alive:
            continue
        holder = app.node
        for stored in app.index.live_mbrs(now):
            report.checks_run += 1
            vlow, vhigh = stored.mbr.first_coordinate_interval
            placed = False
            klow = khigh = 0
            for m in mappers:
                klow, khigh = m.key_range(vlow, vhigh)
                if holder in ring.nodes_covering_range(klow, khigh):
                    placed = True
                    break
            if not placed:
                covering = ring.nodes_covering_range(klow, khigh)
                names = ", ".join(f"N{c.node_id}" for c in covering)
                report.violations.append(
                    Violation(
                        "index",
                        f"N{holder.node_id}",
                        f"holds MBR of {stored.mbr.stream_id!r} with key "
                        f"range [{klow}, {khigh}] covered by [{names}]",
                    )
                )
    return report


# ----------------------------------------------------------------------
# message conservation
# ----------------------------------------------------------------------
def check_message_conservation(network: "Network") -> InvariantReport:
    """Check that every transmission is accounted exactly once.

    The network's books must balance::

        sends + duplicates + in_flight_at_reset
            == receives + drops + in_flight_now

    where ``in_flight_at_reset`` covers messages already travelling when
    ``reset_stats()`` swapped the counters (their receives land in the
    new ledger without a matching send) and ``in_flight_now`` covers
    messages still travelling at check time.  An imbalance means some
    path sends or consumes messages without going through
    :meth:`Network.hop` — traffic escaping the paper's figures.
    """
    report = InvariantReport()
    stats = network.stats
    sends = sum(stats.sends_by_kind.values())
    receives = sum(stats.receives.values())
    drops = stats.total_drops()
    duplicates = sum(stats.duplicates_by_kind.values())
    in_flight = network.in_flight
    carried = stats.in_flight_at_reset

    report.checks_run += 1
    lhs = sends + duplicates + carried
    rhs = receives + drops + in_flight
    if lhs != rhs:
        report.violations.append(
            Violation(
                "messages",
                "network",
                f"conservation broken: sends({sends}) + duplicates"
                f"({duplicates}) + carried({carried}) = {lhs} but "
                f"receives({receives}) + drops({drops}) + "
                f"in_flight({in_flight}) = {rhs}",
            )
        )
    report.checks_run += 1
    if in_flight < 0:
        report.violations.append(
            Violation(
                "messages", "network", f"negative in-flight count {in_flight}"
            )
        )
    return report


# ----------------------------------------------------------------------
# replica placement (DESIGN.md §10)
# ----------------------------------------------------------------------
def check_replica_placement(
    system: "StreamIndexSystem", *, now: Optional[float] = None
) -> InvariantReport:
    """Check every live MBR has its ``r - 1`` successor replicas.

    For each live primary MBR held by its span's *last* covering node,
    the first ``r - 1`` live non-covering successors (the replication
    targets) must each hold a same-version copy — as a replica, or as
    a primary if a handoff promoted it.  Only meaningful at quiescence:
    the ring must be stabilized and at least one anti-entropy round plus
    its acks must have drained, otherwise in-flight pushes legitimately
    show up as missing copies.  Trivially clean at r = 1.
    """
    report = InvariantReport()
    if system.config.replication_factor <= 1:
        return report
    now = system.sim.now if now is None else now
    # MBRs younger than one repair cycle (two stabilization rounds for
    # the anti-entropy re-push, the ack cooldown, plus flight time) may
    # legitimately still have their replica pushes in the air — the
    # invariant is about *converged* placements, not in-flight ones.
    from ..core.replication import REPUSH_COOLDOWN_HOPS

    period = system.stabilizer.period_ms if system.stabilizer else 500.0
    grace = 2.0 * period + (REPUSH_COOLDOWN_HOPS + 2.0) * system.config.hop_delay_ms
    bspan = system.config.workload.bspan_ms
    for app in system.all_apps:
        if not app.node.alive:
            continue
        mgr = app.runtime.holder.replication
        for stored in app.index.live_mbrs(now):
            age = bspan - (stored.expires - now)
            if age < grace:
                continue
            vlow, vhigh = stored.mbr.first_coordinate_interval
            klow, khigh = system.mapper.key_range(vlow, vhigh)
            if not mgr.is_last_holder(klow, khigh):
                continue
            for target in mgr.replica_targets(klow, khigh):
                target_app = system.apps.get(target.node_id)
                report.checks_run += 1
                if target_app is None or not target_app.node.alive:
                    report.violations.append(
                        Violation(
                            "replication",
                            f"N{app.node_id}",
                            f"replica target N{target.node_id} for "
                            f"{stored.mbr.stream_id!r} has no live app",
                        )
                    )
                    continue
                peer = target_app.runtime.holder
                held = any(
                    entry.expires == stored.expires
                    for entry in peer.replication.store.get(
                        stored.mbr.stream_id, ()
                    )
                ) or any(
                    copy.expires == stored.expires
                    for copy in peer.index._mbrs.get(stored.mbr.stream_id, ())
                )
                if not held:
                    report.violations.append(
                        Violation(
                            "replication",
                            f"N{app.node_id}",
                            f"successor N{target.node_id} holds no copy of "
                            f"{stored.mbr.stream_id!r} version "
                            f"{stored.expires!r}",
                        )
                    )
    return report


# ----------------------------------------------------------------------
# delivery policy
# ----------------------------------------------------------------------
def check_delivery_policy(system: "StreamIndexSystem") -> InvariantReport:
    """Check dispatch tables and dedup state against the protocol registry.

    Every payload type registered in
    :data:`~repro.core.protocol.PAYLOAD_REGISTRY` must have a role
    handler on every live node (``Ack`` excepted — the runtime consumes
    acks before dispatch), otherwise a protocol message would fall into
    the unknown-payload fallback on some nodes but not others.  The
    dedup seen-set must stay within ``cfg.dedup_seen_limit`` and in
    sync with its FIFO eviction queue.
    """
    from ..core.protocol import Ack, PAYLOAD_REGISTRY

    report = InvariantReport()
    for app in system.all_apps:
        if not app.node.alive:
            continue
        runtime = app.runtime
        label = f"N{app.node_id}"
        for payload_type in PAYLOAD_REGISTRY:
            if payload_type is Ack:
                continue
            report.checks_run += 1
            if runtime.dispatch.lookup(payload_type) is None:
                report.violations.append(
                    Violation(
                        "delivery",
                        label,
                        f"registered payload {payload_type.__name__} has no "
                        "role handler",
                    )
                )
        report.checks_run += 1
        seen = len(runtime._seen_deliveries)
        order = len(runtime._seen_order)
        limit = system.config.dedup_seen_limit
        if seen != order or seen > limit:
            report.violations.append(
                Violation(
                    "delivery",
                    label,
                    f"dedup memory inconsistent: {seen} ids vs {order} in "
                    f"FIFO order, limit {limit}",
                )
            )
    return report


# ----------------------------------------------------------------------
# combined sweep
# ----------------------------------------------------------------------
def _merge(into: InvariantReport, part: InvariantReport) -> None:
    into.violations.extend(part.violations)
    into.checks_run += part.checks_run


def check_invariants(
    system: "StreamIndexSystem",
    *,
    fingers: bool = True,
    index: bool = True,
    messages: bool = True,
    delivery: bool = True,
    replication: bool = True,
) -> InvariantReport:
    """Run the full invariant sweep over a system.

    The ring must be in (or have been stabilized back to) its converged
    state; under *active* churn pass ``fingers=False`` and expect index
    placement to hold only for MBRs published since convergence (stale
    ones expire within BSPAN — run the system forward before checking).
    The replica-placement check (skipped automatically at r = 1)
    additionally needs a post-churn anti-entropy round to have drained.
    """
    report = check_ring(system.ring, fingers=fingers)
    _merge(report, check_physical_ownership(system.ring))
    if index:
        _merge(report, check_index_placement(system))
    if messages:
        _merge(report, check_message_conservation(system.network))
    if delivery:
        _merge(report, check_delivery_policy(system))
    if replication:
        _merge(report, check_replica_placement(system))
    return report


def assert_invariants(
    system: "StreamIndexSystem", *, fingers: bool = True
) -> InvariantReport:
    """Raise :class:`InvariantError` if any invariant fails; else report."""
    report = check_invariants(system, fingers=fingers)
    if not report.ok:
        raise InvariantError(report.summary())
    return report
