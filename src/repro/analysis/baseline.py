"""Baseline files: grandfathered simlint findings.

A baseline lets the linter gate *new* violations while known ones are
being paid down.  The file is plain text — one fingerprint per line,
``#`` comments and blank lines ignored — and is a multiset: two
identical grandfathered findings need two identical lines.

The committed repository baseline (``simlint-baseline.txt``) ships
empty: the initial rule catalog's real catches were fixed in the same
change that introduced the linter.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from .findings import Finding, fingerprint

__all__ = [
    "load_baseline",
    "write_baseline",
    "split_baselined",
    "stale_entries",
]

PathLike = Union[str, Path]

_HEADER = """\
# simlint baseline — grandfathered findings, one fingerprint per line.
# Regenerate with: python -m repro lint --write-baseline [paths]
# Format: <path>::<rule>::<stripped source line>
"""


def load_baseline(path: PathLike) -> "Counter[str]":
    """Read a baseline file into a fingerprint multiset.

    A missing file is an empty baseline (so fresh checkouts and
    ``--baseline`` paths that do not exist yet behave identically).
    """
    baseline: Counter[str] = Counter()
    p = Path(path)
    if not p.exists():
        return baseline
    for raw in p.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        baseline[line] += 1
    return baseline


def write_baseline(findings: Iterable[Finding], path: PathLike) -> Path:
    """Write the given findings as the new baseline; returns the path."""
    lines = sorted(fingerprint(f) for f in findings)
    Path(path).write_text(_HEADER + "".join(line + "\n" for line in lines))
    return Path(path)


def split_baselined(
    findings: Iterable[Finding], baseline: "Counter[str]"
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into ``(fresh, grandfathered)``.

    Each baseline entry absorbs at most as many findings as its
    multiplicity; everything else is fresh and should fail the build.
    """
    budget = Counter(baseline)
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fp = fingerprint(finding)
        if budget[fp] > 0:
            budget[fp] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered


def stale_entries(
    findings: Iterable[Finding], baseline: "Counter[str]"
) -> List[str]:
    """Baseline entries no longer matched by any current finding.

    The hygiene counterpart of :func:`split_baselined`: a grandfathered
    fingerprint whose finding has since been fixed (or whose line was
    rewritten) should leave the baseline, or the file silently rots
    into a list of suppressions nobody can audit.  Multiset semantics
    match the loader: an entry listed twice with one surviving finding
    is stale once.  Returned sorted, one string per stale occurrence
    (``python -m repro lint --prune-baseline`` fails while this is
    non-empty; ``--write`` rewrites the file without them).
    """
    remaining = Counter(baseline)
    for finding in findings:
        fp = fingerprint(finding)
        if remaining[fp] > 0:
            remaining[fp] -= 1
    return sorted(remaining.elements())
