"""The simlint engine: file collection, parsing, suppression, ordering.

The engine walks the requested paths, parses each ``.py`` file once,
runs every rule whose scope covers the file, drops findings silenced by
inline suppressions, and returns the remainder sorted by
``(path, line, col, rule)``.

Suppression syntax::

    x = msg.born == 0.0  # simlint: disable=D004
    # simlint: disable-file=D001,D003   (anywhere at module top level)

A per-line comment silences the listed rules on that line only; a
``disable-file`` comment silences them for the whole file.  ``disable=all``
is accepted in both forms.
"""

from __future__ import annotations

import ast
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

from .findings import Finding
from .rules import RULES

__all__ = ["lint_paths", "lint_file", "collect_files"]

PathLike = Union[str, Path]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def collect_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Hidden directories and ``__pycache__`` are skipped; explicit file
    arguments are taken as-is.
    """
    out: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in p.rglob("*.py"):
                parts = child.relative_to(p).parts
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in parts
                ):
                    continue
                out.add(child)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """``(per-line, file-wide)`` suppressed rule codes.

    Comments are found with :mod:`tokenize` rather than substring search
    so that a suppression marker inside a string literal is inert.
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group(2).split(",")
                if code.strip()
            }
            if match.group(1) == "disable-file":
                file_wide |= codes
            else:
                per_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass  # a parse error will be reported by lint_file anyway
    return per_line, file_wide


def _is_suppressed(
    finding: Finding,
    per_line: Dict[int, Set[str]],
    file_wide: Set[str],
) -> bool:
    def covers(codes: Set[str]) -> bool:
        return finding.rule in codes or "ALL" in codes

    if covers(file_wide):
        return True
    return covers(per_line.get(finding.line, set()))


def lint_file(path: PathLike) -> List[Finding]:
    """Run every applicable rule over one file."""
    p = Path(path)
    path_str = str(p)
    try:
        source = p.read_text()
    except OSError as exc:
        return [
            Finding(
                rule="E000",
                path=path_str,
                line=1,
                col=0,
                message=f"cannot read file: {exc}",
            )
        ]
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E000",
                path=path_str,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]

    source_lines = source.splitlines()
    per_line, file_wide = _parse_suppressions(source)

    findings: List[Finding] = []
    for rule_cls in RULES.values():
        if not rule_cls.applies_to(path_str):
            continue
        rule = rule_cls(path_str, source_lines)
        for finding in rule.run(tree):
            if not _is_suppressed(finding, per_line, file_wide):
                findings.append(finding)
    return findings


def lint_paths(paths: Iterable[PathLike]) -> List[Finding]:
    """Lint files/directories; findings sorted by (path, line, col, rule)."""
    findings: List[Finding] = []
    for path in collect_files(list(paths)):
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
