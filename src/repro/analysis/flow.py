"""simflow: whole-program static protocol-flow analysis (DESIGN.md §11).

simlint (D001–D011) checks one file at a time; this module parses every
module of the package *once* and checks the protocol as a whole.  Three
extraction passes feed a :class:`~repro.analysis.flowgraph.
MessageFlowGraph`:

1. **registry pass** — every ``@payload``-decorated class, with its
   delivery policy and the flow metadata (``senders`` / ``response`` /
   ``flow``) read straight from the decorator AST (the analyzed code is
   never imported, so deliberately broken fixture trees can be tested);
2. **handler pass** — every ``@handles(P)`` method inside a class that
   declares a ``role``;
3. **send pass** — every call through a sending API
   (``reliable_route`` / ``reliable_disseminate`` / ``send_response`` /
   ``reliable.track`` / ``Message(payload=...)``), with intraprocedural
   constant propagation resolving which payload type each site puts on
   the wire and which role it belongs to (the enclosing class's
   ``role`` attribute, else the module's ``FLOW_ROLE`` marker).

The F-rule catalog checked over the graph:

====  ==============================================================
F001  every registered payload has ≥1 send site and ≥1 handler
      (``flow="reserved"`` waives the send site, ``flow="ack"`` the
      handler — the dispatch layer consumes acks itself)
F002  no attributed send site sends a payload its role does not
      appear in the payload's declared ``senders``
F003  ack obligations are acyclic (an ack carrier must not itself be
      acknowledged) and every ``ack_on_delivery`` payload has an ack
      consumer (a registered ``flow="ack"`` payload)
F004  every payload declaring ``response=R`` reaches a send site of
      ``R`` from at least one of its handlers, walking delivery and
      emit edges
F005  no payload field is assigned after construction on a send path
      (a local that is both constructed and sent in one function)
====  ==============================================================

Findings flow through the shared :class:`~repro.analysis.findings.
Finding` / baseline machinery; run via ``python -m repro flow``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .findings import Finding
from .flowgraph import (
    HandlerSite,
    MessageFlowGraph,
    MutationSite,
    PayloadDecl,
    SendSite,
)
from .linter import collect_files

__all__ = [
    "FLOW_RULES",
    "DEFAULT_EXCLUDES",
    "build_flow_graph",
    "check_flow",
    "analyze_flow",
    "render_flow_table",
]

PathLike = Union[str, Path]

#: rule code -> one-line title (the catalog is documented in DESIGN.md §11)
FLOW_RULES: Dict[str, str] = {
    "F001": "registered payload without a send site or handler",
    "F002": "send site in a role the payload does not declare",
    "F003": "ack obligations cyclic or without an ack consumer",
    "F004": "request payload without a reachable response path",
    "F005": "payload field mutated after construction on a send path",
}

#: package path segments excluded from whole-program analysis: strawman
#: baselines reuse the production role names with a reduced protocol on
#: purpose, and test trees are full of hand-built partial payloads
DEFAULT_EXCLUDES: Tuple[str, ...] = ("baselines", "tests", "test")

#: sending APIs: callee attribute name -> positional index of the payload
_SEND_ARG_INDEX = {
    "reliable_route": 0,
    "reliable_disseminate": 0,
    "send_response": 1,
}


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------
def _const_str(
    node: ast.AST, kind_map: Dict[str, str], consts: Dict[str, str]
) -> Optional[str]:
    """A string literal, ``KIND.X``, or a module-level string constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "KIND":
            return kind_map.get(node.attr, node.attr.lower())
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _const_str_tuple(
    node: ast.AST, kind_map: Dict[str, str], consts: Dict[str, str]
) -> Tuple[str, ...]:
    """A tuple/list of string literals / ``KIND.X`` / named constants."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return ()
    out: List[str] = []
    for elt in node.elts:
        value = _const_str(elt, kind_map, consts)
        if value is not None:
            out.append(value)
    return tuple(out)


def _module_str_consts(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (e.g. RUNTIME_ROLE)."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.targets[0].id] = node.value.value
    return out


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The plain class name of a ``x: P`` / ``x: "P"`` annotation."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dict_value_annotation(node: Optional[ast.AST]) -> Optional[str]:
    """``P`` for a ``Dict[K, P]`` / ``dict[K, P]`` annotation."""
    if not isinstance(node, ast.Subscript):
        return None
    base = node.value
    if not (isinstance(base, ast.Name) and base.id in ("Dict", "dict")):
        return None
    inner = node.slice
    if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
        return _annotation_name(inner.elts[1])
    return None


def _line_text(source_lines: Sequence[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


# ----------------------------------------------------------------------
# pass 1: KIND maps + payload declarations
# ----------------------------------------------------------------------
def _collect_kind_map(tree: ast.Module) -> Dict[str, str]:
    """``ATTR -> value`` for every ``class KIND`` constant in a module."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == "KIND"):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                out[stmt.targets[0].id] = stmt.value.value
    return out


def _payload_decorator(node: ast.ClassDef) -> Optional[ast.Call]:
    for deco in node.decorator_list:
        if (
            isinstance(deco, ast.Call)
            and isinstance(deco.func, ast.Name)
            and deco.func.id == "payload"
        ):
            return deco
    return None


def _collect_payload_decls(
    path: str,
    tree: ast.Module,
    source_lines: Sequence[str],
    kind_map: Dict[str, str],
) -> List[PayloadDecl]:
    consts = _module_str_consts(tree)
    out: List[PayloadDecl] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        deco = _payload_decorator(node)
        if deco is None:
            continue
        kind = ""
        dedup = False
        ack_on_delivery = False
        ack_kinds: Tuple[str, ...] = ()
        senders: Tuple[str, ...] = ()
        response: Optional[str] = None
        flow = "normal"
        for kw in deco.keywords:
            if kw.arg == "kind":
                kind = _const_str(kw.value, kind_map, consts) or ""
            elif kw.arg == "dedup":
                dedup = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value
                )
            elif kw.arg == "ack_on_delivery":
                ack_on_delivery = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value
                )
            elif kw.arg == "ack_kinds":
                ack_kinds = _const_str_tuple(kw.value, kind_map, consts)
            elif kw.arg == "senders":
                senders = _const_str_tuple(kw.value, kind_map, consts)
            elif kw.arg == "response":
                response = _const_str(kw.value, kind_map, consts)
            elif kw.arg == "flow":
                flow = _const_str(kw.value, kind_map, consts) or "normal"
        out.append(
            PayloadDecl(
                name=node.name,
                kind=kind,
                dedup=dedup,
                ack_on_delivery=ack_on_delivery,
                ack_kinds=frozenset(ack_kinds),
                senders=frozenset(senders),
                response=response,
                flow=flow,
                path=path,
                line=node.lineno,
                line_text=_line_text(source_lines, node.lineno),
            )
        )
    return out


# ----------------------------------------------------------------------
# pass 2/3: roles, handlers, send sites with constant propagation
# ----------------------------------------------------------------------
def _module_flow_role(tree: ast.Module) -> Optional[str]:
    """The module-level ``FLOW_ROLE = "..."`` marker, if present."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "FLOW_ROLE"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.value.value
    return None


def _class_role(node: ast.ClassDef) -> Optional[str]:
    """The ``role = "..."`` class attribute, if declared non-empty."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "role"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
            and stmt.value.value
        ):
            return stmt.value.value
    return None


def _handles_payload(fn: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """``(payload name, decorator node)`` for an ``@handles(P)`` method."""
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for deco in fn.decorator_list:
        if (
            isinstance(deco, ast.Call)
            and isinstance(deco.func, ast.Name)
            and deco.func.id == "handles"
            and deco.args
            and isinstance(deco.args[0], ast.Name)
        ):
            return deco.args[0].id, deco
    return None


class _FunctionScanner:
    """Constant propagation + send/mutation discovery in one function.

    Tracks which locals are bound to instances of registered payload
    types — direct construction, ``dict.setdefault`` insertion,
    ``dataclasses.replace`` of a tracked local, annotated assignments
    and parameters, and iteration over ``.items()`` / ``.values()`` of
    a ``Dict[K, P]``-annotated local.  Nested functions inherit the
    enclosing bindings (closures send what the enclosing scope built).
    Statements are processed in source order, so a binding is visible
    to every later statement of the scope; branch-local rebindings are
    merged optimistically (last writer wins), which is precise enough
    for the straight-line send paths the role services use.
    """

    def __init__(
        self,
        extractor: "_ModuleExtractor",
        role: Optional[str],
        func: str,
        scope_key: Tuple[str, str],
        env: Dict[str, FrozenSet[str]],
        dict_ann: Dict[str, str],
        params: Set[str],
    ) -> None:
        self.x = extractor
        self.role = role
        self.func = func
        self.scope_key = scope_key
        #: local name -> payload types it *may* hold (may-analysis:
        #: bindings from both sides of a branch are unioned)
        self.env = env
        self.dict_ann = dict_ann
        #: parameter names seeded from annotations: they attribute sends
        #: but are exempt from F005 — the payload was constructed by the
        #: caller, so an assignment here (e.g. the runtime stamping
        #: ``payload.delivery_id`` in ``send_response``) is not a
        #: post-construction mutation in this scope
        self.params = params

    # -- payload-type resolution ---------------------------------------
    def resolve(self, node: Optional[ast.AST]) -> Tuple[FrozenSet[str], str]:
        """``(possible payload types, local name)`` of an expression."""
        if node is None:
            return frozenset(), ""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset()), node.id
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name):
                if fn.id in self.x.payload_names:
                    return frozenset({fn.id}), ""
                if fn.id == "replace" and node.args:
                    resolved, _ = self.resolve(node.args[0])
                    return resolved, ""
            if isinstance(fn, ast.Attribute) and fn.attr == "setdefault":
                if len(node.args) >= 2:
                    resolved, _ = self.resolve(node.args[1])
                    return resolved, ""
        return frozenset(), ""

    # -- statement walk ------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.statement(stmt)

    def statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.x.scan_function(
                stmt,
                role=self.role,
                qualprefix=self.func,
                scope_key=self.scope_key,
                outer_env=self.env,
                outer_dict_ann=self.dict_ann,
                outer_params=self.params,
            )
            return
        if isinstance(stmt, ast.ClassDef):
            return  # local classes: out of scope for role send paths
        # Compound statements: scan only their own expression parts,
        # then recurse into the nested bodies statement by statement —
        # scanning the whole subtree here would double-count calls.
        if isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            before = dict(self.env)
            self.run(stmt.body)
            env_then = self.env
            self.env = dict(before)
            self.run(stmt.orelse)
            env_else = self.env
            merged: Dict[str, FrozenSet[str]] = {}
            for name in set(env_then) | set(env_else):
                union = env_then.get(name, frozenset()) | env_else.get(
                    name, frozenset()
                )
                if union:
                    merged[name] = union
            self.env = merged
            return
        if isinstance(stmt, ast.While):
            self.scan_expr(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self.scan_expr(stmt.iter)
            self.handle_for(stmt)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        # Simple statement: safe to scan the whole node for calls.
        self.scan_calls(stmt)
        if isinstance(stmt, ast.Assign):
            self.handle_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.handle_mutation_target(stmt.target, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self.handle_ann_assign(stmt)

    def handle_assign(self, stmt: ast.Assign) -> None:
        resolved, _ = self.resolve(stmt.value)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.params.discard(target.id)
                if resolved:
                    self.env[target.id] = resolved
                else:
                    self.env.pop(target.id, None)
            elif isinstance(target, ast.Attribute):
                self.handle_mutation_target(target, stmt)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env.pop(elt.id, None)

    def handle_mutation_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        """Record ``local.field = ...`` on a payload-bound local."""
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
        ):
            return
        var = target.value.id
        if var in self.params:
            return
        for bound in sorted(self.env.get(var, frozenset())):
            self.x.record_mutation(
                payload=bound,
                var=var,
                attr=target.attr,
                role=self.role,
                line=stmt.lineno,
                col=stmt.col_offset,
                func=self.func,
                scope_key=self.scope_key,
            )

    def handle_ann_assign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        name = stmt.target.id
        self.params.discard(name)
        ann = _annotation_name(stmt.annotation)
        if ann is not None and ann in self.x.payload_names:
            self.env[name] = frozenset({ann})
            return
        dict_value = _dict_value_annotation(stmt.annotation)
        if dict_value is not None and dict_value in self.x.payload_names:
            self.dict_ann[name] = dict_value
            self.env.pop(name, None)
            return
        resolved, _ = self.resolve(stmt.value)
        if resolved:
            self.env[name] = resolved
        else:
            self.env.pop(name, None)

    def handle_for(self, stmt: ast.For) -> None:
        bound = False
        it = stmt.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and isinstance(it.func.value, ast.Name)
        ):
            value_type = self.dict_ann.get(it.func.value.id)
            if value_type is not None:
                if (
                    it.func.attr == "items"
                    and isinstance(stmt.target, ast.Tuple)
                    and len(stmt.target.elts) == 2
                    and isinstance(stmt.target.elts[1], ast.Name)
                ):
                    self.env[stmt.target.elts[1].id] = frozenset({value_type})
                    bound = True
                elif it.func.attr == "values" and isinstance(
                    stmt.target, ast.Name
                ):
                    self.env[stmt.target.id] = frozenset({value_type})
                    bound = True
        if not bound:
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    self.env.pop(node.id, None)
        self.run(stmt.body)
        self.run(stmt.orelse)

    # -- send-site discovery -------------------------------------------
    def scan_calls(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self.check_send(node)

    def scan_expr(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self.check_send(node)

    def check_send(self, call: ast.Call) -> None:
        fn = call.func
        payload_arg: Optional[ast.AST] = None
        if isinstance(fn, ast.Attribute):
            index = _SEND_ARG_INDEX.get(fn.attr)
            if index is not None and len(call.args) > index:
                payload_arg = call.args[index]
            elif (
                fn.attr == "track"
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr == "reliable"
                and call.args
            ):
                payload_arg = call.args[0]
        elif isinstance(fn, ast.Name) and fn.id == "Message":
            for kw in call.keywords:
                if kw.arg == "payload":
                    payload_arg = kw.value
                    break
        if payload_arg is None:
            return
        resolved, var = self.resolve(payload_arg)
        for payload in sorted(resolved):
            self.x.record_send(
                payload=payload,
                role=self.role,
                line=call.lineno,
                col=call.col_offset,
                func=self.func,
                var=var,
                scope_key=self.scope_key,
            )


class _ModuleExtractor:
    """Runs the handler and send passes over one parsed module."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        source_lines: Sequence[str],
        payload_names: Set[str],
    ) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        self.payload_names = payload_names
        self.module_role = _module_flow_role(tree)
        self.handlers: List[HandlerSite] = []
        self.raw_sends: List[SendSite] = []
        self.raw_mutations: List[MutationSite] = []
        #: scope key -> local names sent from that (outermost) scope
        self._sent_vars: Dict[Tuple[str, str], Set[str]] = {}

    # -- recording ------------------------------------------------------
    def record_send(
        self,
        *,
        payload: str,
        role: Optional[str],
        line: int,
        col: int,
        func: str,
        var: str,
        scope_key: Tuple[str, str],
    ) -> None:
        self.raw_sends.append(
            SendSite(
                payload=payload,
                role=role,
                path=self.path,
                line=line,
                col=col,
                func=func,
                var=var,
                line_text=_line_text(self.source_lines, line),
            )
        )
        if var:
            self._sent_vars.setdefault(scope_key, set()).add(var)

    def record_mutation(
        self,
        *,
        payload: str,
        var: str,
        attr: str,
        role: Optional[str],
        line: int,
        col: int,
        func: str,
        scope_key: Tuple[str, str],
    ) -> None:
        self.raw_mutations.append(
            MutationSite(
                payload=payload,
                var=var,
                attr=attr,
                role=role,
                path=self.path,
                line=line,
                col=col,
                func=func,
                line_text=_line_text(self.source_lines, line),
            )
        )

    def sent_mutations(self) -> List[MutationSite]:
        """Mutations whose local was also sent from the same scope."""
        out: List[MutationSite] = []
        for mutation in self.raw_mutations:
            scope_key = (self.path, mutation.func.split(".<locals>.")[0])
            if mutation.var in self._sent_vars.get(scope_key, set()):
                out.append(mutation)
        return out

    # -- traversal ------------------------------------------------------
    def run(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.scan_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan_function(node, role=self.module_role)

    def scan_class(self, node: ast.ClassDef) -> None:
        role = _class_role(node) or self.module_role
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handled = _handles_payload(stmt)
                if handled is not None and role is not None:
                    name, deco = handled
                    if name in self.payload_names:
                        self.handlers.append(
                            HandlerSite(
                                payload=name,
                                role=role,
                                path=self.path,
                                line=stmt.lineno,
                                col=stmt.col_offset,
                                owner=f"{node.name}.{stmt.name}",
                                line_text=_line_text(
                                    self.source_lines, stmt.lineno
                                ),
                            )
                        )
                self.scan_function(stmt, role=role, qualprefix=node.name)
            elif isinstance(stmt, ast.ClassDef):
                self.scan_class(stmt)

    def scan_function(
        self,
        fn: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        *,
        role: Optional[str],
        qualprefix: str = "",
        scope_key: Optional[Tuple[str, str]] = None,
        outer_env: Optional[Dict[str, FrozenSet[str]]] = None,
        outer_dict_ann: Optional[Dict[str, str]] = None,
        outer_params: Optional[Set[str]] = None,
    ) -> None:
        qualname = (
            f"{qualprefix}.<locals>.{fn.name}"
            if scope_key is not None
            else (f"{qualprefix}.{fn.name}" if qualprefix else fn.name)
        )
        key = scope_key or (self.path, qualname)
        env: Dict[str, FrozenSet[str]] = dict(outer_env or {})
        dict_ann: Dict[str, str] = dict(outer_dict_ann or {})
        params: Set[str] = set(outer_params or ())
        args = fn.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for arg in all_args:
            ann = _annotation_name(arg.annotation)
            if ann is not None and ann in self.payload_names:
                env[arg.arg] = frozenset({ann})
                params.add(arg.arg)
            else:
                dict_value = _dict_value_annotation(arg.annotation)
                if dict_value is not None and dict_value in self.payload_names:
                    dict_ann[arg.arg] = dict_value
        scanner = _FunctionScanner(
            self, role=role, func=qualname, scope_key=key,
            env=env, dict_ann=dict_ann, params=params,
        )
        scanner.run(fn.body)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _flow_files(
    paths: Sequence[PathLike], excludes: Tuple[str, ...]
) -> List[Path]:
    out: List[Path] = []
    for path in collect_files(list(paths)):
        if any(part in excludes for part in path.parts):
            continue
        out.append(path)
    return out


def build_flow_graph(
    paths: Sequence[PathLike],
    *,
    excludes: Tuple[str, ...] = DEFAULT_EXCLUDES,
) -> Tuple[MessageFlowGraph, List[Finding]]:
    """Parse a source tree into its message-flow graph.

    Returns ``(graph, parse_findings)`` where the findings carry any
    unreadable / syntactically invalid files (rule ``E000``, matching
    the linter's convention).  The analyzed code is never imported.
    """
    files = _flow_files(paths, excludes)
    parsed: List[Tuple[str, ast.Module, List[str]]] = []
    findings: List[Finding] = []
    for path in files:
        path_str = str(path)
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="E000", path=path_str, line=1, col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            tree = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="E000", path=path_str,
                    line=exc.lineno or 1, col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        parsed.append((path_str, tree, source.splitlines()))

    kind_map: Dict[str, str] = {}
    for _, tree, _ in parsed:
        kind_map.update(_collect_kind_map(tree))

    graph = MessageFlowGraph()
    for path_str, tree, source_lines in parsed:
        for decl in _collect_payload_decls(
            path_str, tree, source_lines, kind_map
        ):
            graph.payloads[decl.name] = decl
    payload_names = set(graph.payloads)

    for path_str, tree, source_lines in parsed:
        extractor = _ModuleExtractor(
            path_str, tree, source_lines, payload_names
        )
        extractor.run()
        graph.handlers.extend(extractor.handlers)
        graph.sends.extend(extractor.raw_sends)
        graph.mutations.extend(extractor.sent_mutations())
    graph.sends.sort(key=lambda s: (s.path, s.line, s.col))
    graph.handlers.sort(key=lambda h: (h.path, h.line, h.col))
    graph.mutations.sort(key=lambda m: (m.path, m.line, m.col))
    return graph, findings


def _decl_finding(rule: str, decl: PayloadDecl, message: str) -> Finding:
    return Finding(
        rule=rule, path=decl.path, line=decl.line, col=0,
        message=message, line_text=decl.line_text,
    )


def check_flow(graph: MessageFlowGraph) -> List[Finding]:
    """Run the F001–F005 catalog over an assembled flow graph."""
    findings: List[Finding] = []
    ack_carriers = [
        d for d in graph.payloads.values() if d.flow == "ack"
    ]

    for name in sorted(graph.payloads):
        decl = graph.payloads[name]
        sends = graph.sends_of(name)
        handlers = graph.handlers_of(name)

        # F001 — liveness of the registry entry
        if decl.flow != "reserved" and not sends:
            findings.append(
                _decl_finding(
                    "F001",
                    decl,
                    f"payload {name} (kind {decl.kind!r}) has no "
                    "statically attributed send site",
                )
            )
        if decl.flow != "ack" and not handlers:
            findings.append(
                _decl_finding(
                    "F001",
                    decl,
                    f"payload {name} (kind {decl.kind!r}) has no "
                    "@handles handler in any role",
                )
            )

        # F002 — sender legality
        for send in sends:
            if send.role is None:
                continue
            if send.role not in decl.senders:
                declared = ", ".join(sorted(decl.senders)) or "(none)"
                findings.append(
                    Finding(
                        rule="F002",
                        path=send.path,
                        line=send.line,
                        col=send.col,
                        message=(
                            f"role {send.role!r} sends {name} but the "
                            f"payload declares senders ({declared})"
                        ),
                        line_text=send.line_text,
                    )
                )

        # F003 — ack obligations
        if decl.flow == "ack" and (decl.ack_on_delivery or decl.ack_kinds):
            findings.append(
                _decl_finding(
                    "F003",
                    decl,
                    f"ack carrier {name} is itself acknowledged on "
                    "delivery — the ack graph must be acyclic",
                )
            )
        if (
            decl.flow != "ack"
            and decl.ack_on_delivery
            and not ack_carriers
        ):
            findings.append(
                _decl_finding(
                    "F003",
                    decl,
                    f"payload {name} requires acks on delivery but no "
                    'flow="ack" payload is registered to carry them',
                )
            )

        # F004 — reachable response path
        if decl.response is not None:
            findings.extend(_check_response_path(graph, decl))

    # F005 — post-construction mutation on a send path
    for mutation in graph.mutations:
        findings.append(
            Finding(
                rule="F005",
                path=mutation.path,
                line=mutation.line,
                col=mutation.col,
                message=(
                    f"field {mutation.attr!r} of {mutation.payload} "
                    f"(local {mutation.var!r}) is assigned after "
                    f"construction on a send path in {mutation.func}"
                ),
                line_text=mutation.line_text,
            )
        )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _check_response_path(
    graph: MessageFlowGraph, decl: PayloadDecl
) -> List[Finding]:
    response = decl.response
    assert response is not None
    if response not in graph.payloads:
        return [
            _decl_finding(
                "F004",
                decl,
                f"payload {decl.name} declares response {response!r}, "
                "which is not a registered payload",
            )
        ]
    handlers = graph.handlers_of(decl.name)
    if not handlers:
        return []  # F001 already reports the missing handler
    starts = [("handle", h.role, decl.name) for h in handlers]
    reachable = graph.reachable_from(starts)
    for node in reachable:
        if node[0] == "send" and node[2] == response:
            return []
    return [
        _decl_finding(
            "F004",
            decl,
            f"no send site of response {response} is statically "
            f"reachable from the handlers of {decl.name} "
            f"({', '.join(sorted(h.role for h in handlers))})",
        )
    ]


def analyze_flow(
    paths: Sequence[PathLike],
    *,
    excludes: Tuple[str, ...] = DEFAULT_EXCLUDES,
) -> Tuple[MessageFlowGraph, List[Finding]]:
    """Build the flow graph and run every F rule; the one-call API."""
    graph, findings = build_flow_graph(paths, excludes=excludes)
    findings = findings + check_flow(graph)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return graph, findings


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_flow_table(graph: MessageFlowGraph) -> str:
    """The role×kind table ``repro flow`` prints.

    One row per registered payload, in declaration order: accounting
    kind, flow discipline, declared senders, roles observed sending at
    attributed sites (with site counts), and the handler methods.
    """
    headers = ("PAYLOAD", "KIND", "FLOW", "SENDERS", "SEND SITES", "HANDLERS")
    rows: List[Tuple[str, ...]] = []
    for name, decl in graph.payloads.items():
        sends = graph.sends_of(name)
        by_role: Dict[str, int] = {}
        unattributed = 0
        for send in sends:
            if send.role is None:
                unattributed += 1
            else:
                by_role[send.role] = by_role.get(send.role, 0) + 1
        site_bits = [
            f"{role}×{count}" if count > 1 else role
            for role, count in sorted(by_role.items())
        ]
        if unattributed:
            site_bits.append(f"?×{unattributed}")
        handler_bits = [
            f"{h.role}:{h.owner}" for h in graph.handlers_of(name)
        ]
        rows.append(
            (
                name,
                decl.kind,
                decl.flow,
                ", ".join(sorted(decl.senders)) or "-",
                ", ".join(site_bits) or "-",
                ", ".join(sorted(handler_bits)) or "-",
            )
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)
