"""Static analysis and runtime invariant checking.

Two halves, one contract (DESIGN.md §7):

* :mod:`repro.analysis.linter` — **simlint**, an AST-based linter that
  machine-checks the determinism and protocol conventions the
  reproduction's headline guarantees rest on: all randomness flows
  through :class:`~repro.sim.rng.RngRegistry` substreams (D001), no
  wall-clock reads inside the simulated world (D002), no hash-order
  iteration in scheduling-adjacent code (D003), no float ``==`` in
  routing/index math (D004), no message kinds outside the
  :data:`~repro.core.protocol.KNOWN_KINDS` accounting registry (D005),
  no mutable defaults on payload dataclasses (D006), and the payload
  registry / ``@handles`` dispatch kept provably in sync (D007).

* :mod:`repro.analysis.invariants` — assertable runtime predicates for
  Chord ring health, index-state placement, message conservation and
  registry-driven delivery policy, exposed as :func:`check_invariants`
  / :func:`assert_invariants`, the ``--check-invariants`` CLI flag and
  a pytest fixture.

Run the linter with ``python -m repro lint [paths]``.
"""

from .baseline import load_baseline, split_baselined, stale_entries, write_baseline
from .findings import Finding, fingerprint, format_finding
from .flow import (
    FLOW_RULES,
    analyze_flow,
    build_flow_graph,
    check_flow,
    render_flow_table,
)
from .flowgraph import (
    HandlerSite,
    MessageFlowGraph,
    MutationSite,
    PayloadDecl,
    SendSite,
)
from .invariants import (
    InvariantReport,
    Violation,
    assert_invariants,
    check_delivery_policy,
    check_index_placement,
    check_invariants,
    check_message_conservation,
    check_physical_ownership,
    check_ring,
)
from .linter import lint_paths
from .rules import RULES, all_rule_codes

__all__ = [
    "Finding",
    "fingerprint",
    "format_finding",
    "lint_paths",
    "RULES",
    "all_rule_codes",
    "load_baseline",
    "write_baseline",
    "split_baselined",
    "stale_entries",
    "FLOW_RULES",
    "analyze_flow",
    "build_flow_graph",
    "check_flow",
    "render_flow_table",
    "MessageFlowGraph",
    "PayloadDecl",
    "SendSite",
    "HandlerSite",
    "MutationSite",
    "Violation",
    "InvariantReport",
    "check_ring",
    "check_physical_ownership",
    "check_index_placement",
    "check_message_conservation",
    "check_delivery_policy",
    "check_invariants",
    "assert_invariants",
]
