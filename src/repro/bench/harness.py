"""Experiment harness: node-count sweeps with shared result caching.

Every evaluation figure is a sweep over the system size N with the
Table I workload; several figures read different projections of the
*same* runs (Fig. 6(a) load, Fig. 7(a) overhead, Fig. 8 hops).  The
:class:`SweepCache` makes those runs once per (N, radius, config) and
hands each bench its projection, so the full benchmark suite stays
affordable.

With ``jobs > 1`` the cache fans missing runs out across worker
processes (:mod:`repro.perf.parallel`) before projecting; each sweep
point is an independent simulation, so the parallel fill produces
byte-identical series to the serial one — cached entries are then
:class:`~repro.perf.parallel.SnapshotRun` stand-ins rebuilt from the
workers' stats snapshots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.config import MiddlewareConfig
from ..workload.scenario import MeasuredRun, run_measured

__all__ = ["SweepCache", "PAPER_NODE_COUNTS", "DEFAULT_MEASURE_MS"]

#: the node counts of the paper's scalability experiments (Sec. V)
PAPER_NODE_COUNTS = (50, 100, 200, 300, 500)

DEFAULT_MEASURE_MS = 15_000.0
DEFAULT_WARMUP_EXTRA_MS = 5_000.0


class SweepCache:
    """Caches :class:`MeasuredRun` results keyed by experiment settings."""

    def __init__(
        self,
        *,
        config: Optional[MiddlewareConfig] = None,
        seed: int = 0,
        measure_ms: float = DEFAULT_MEASURE_MS,
        warmup_extra_ms: float = DEFAULT_WARMUP_EXTRA_MS,
        hit_fraction: float = 0.5,
        jobs: int = 1,
    ) -> None:
        self.config = config if config is not None else MiddlewareConfig()
        self.seed = seed
        self.measure_ms = measure_ms
        self.warmup_extra_ms = warmup_extra_ms
        self.hit_fraction = hit_fraction
        self.jobs = jobs
        # serial fills hold live MeasuredRuns; parallel fills hold
        # SnapshotRun stand-ins (same projection interface)
        self._runs: Dict[Tuple[int, float], Union[MeasuredRun, "object"]] = {}

    def run(self, n_nodes: int, *, radius: Optional[float] = None) -> MeasuredRun:
        """The measured run for (N, radius), computed once."""
        r = radius if radius is not None else self.config.query_radius
        key = (n_nodes, r)
        if key not in self._runs:
            self._runs[key] = run_measured(
                n_nodes,
                config=self.config,
                seed=self.seed,
                radius=r,
                hit_fraction=self.hit_fraction,
                warmup_extra_ms=self.warmup_extra_ms,
                measure_ms=self.measure_ms,
            )
        return self._runs[key]

    def prefetch(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> None:
        """Fill the cache for the given Ns, in parallel when jobs > 1.

        Worker processes return stats snapshots; the cached entries are
        snapshot-backed run stand-ins whose figure projections are
        byte-identical to the live runs a serial fill would produce
        (pinned by tests/perf/test_parallel.py).
        """
        r = radius if radius is not None else self.config.query_radius
        missing = [n for n in node_counts if (n, r) not in self._runs]
        if self.jobs <= 1 or len(missing) <= 1:
            for n in missing:
                self.run(n, radius=radius)
            return
        from ..perf.parallel import measured_cell, run_cells, snapshot_run

        cells = [
            measured_cell(
                n,
                config=self.config,
                seed=self.seed,
                radius=r,
                hit_fraction=self.hit_fraction,
                warmup_extra_ms=self.warmup_extra_ms,
                measure_ms=self.measure_ms,
            )
            for n in missing
        ]
        for n, result in zip(missing, run_cells(cells, jobs=self.jobs)):
            self._runs[(n, r)] = snapshot_run(result)

    # ------------------------------------------------------------------
    # figure projections
    # ------------------------------------------------------------------
    def load_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 6(a): load components across the N sweep."""
        node_counts = list(node_counts)
        self.prefetch(node_counts, radius=radius)
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            load = self.run(n, radius=radius).metrics.load_components()
            for name, value in load.items():
                series.setdefault(name, []).append(value)
        return series

    def overhead_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 7: overhead components across the N sweep."""
        node_counts = list(node_counts)
        self.prefetch(node_counts, radius=radius)
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            over = self.run(n, radius=radius).metrics.overhead_components()
            for name, value in over.items():
                series.setdefault(name, []).append(value)
        return series

    def hop_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 8: hop components across the N sweep."""
        node_counts = list(node_counts)
        self.prefetch(node_counts, radius=radius)
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            hops = self.run(n, radius=radius).metrics.hop_components()
            for name, value in hops.items():
                series.setdefault(name, []).append(value)
        return series
