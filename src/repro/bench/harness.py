"""Experiment harness: node-count sweeps with shared result caching.

Every evaluation figure is a sweep over the system size N with the
Table I workload; several figures read different projections of the
*same* runs (Fig. 6(a) load, Fig. 7(a) overhead, Fig. 8 hops).  The
:class:`SweepCache` makes those runs once per (N, radius, config) and
hands each bench its projection, so the full benchmark suite stays
affordable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import MiddlewareConfig
from ..workload.scenario import MeasuredRun, run_measured

__all__ = ["SweepCache", "PAPER_NODE_COUNTS", "DEFAULT_MEASURE_MS"]

#: the node counts of the paper's scalability experiments (Sec. V)
PAPER_NODE_COUNTS = (50, 100, 200, 300, 500)

DEFAULT_MEASURE_MS = 15_000.0
DEFAULT_WARMUP_EXTRA_MS = 5_000.0


class SweepCache:
    """Caches :class:`MeasuredRun` results keyed by experiment settings."""

    def __init__(
        self,
        *,
        config: Optional[MiddlewareConfig] = None,
        seed: int = 0,
        measure_ms: float = DEFAULT_MEASURE_MS,
        warmup_extra_ms: float = DEFAULT_WARMUP_EXTRA_MS,
        hit_fraction: float = 0.5,
    ) -> None:
        self.config = config if config is not None else MiddlewareConfig()
        self.seed = seed
        self.measure_ms = measure_ms
        self.warmup_extra_ms = warmup_extra_ms
        self.hit_fraction = hit_fraction
        self._runs: Dict[Tuple[int, float], MeasuredRun] = {}

    def run(self, n_nodes: int, *, radius: Optional[float] = None) -> MeasuredRun:
        """The measured run for (N, radius), computed once."""
        r = radius if radius is not None else self.config.query_radius
        key = (n_nodes, r)
        if key not in self._runs:
            self._runs[key] = run_measured(
                n_nodes,
                config=self.config,
                seed=self.seed,
                radius=r,
                hit_fraction=self.hit_fraction,
                warmup_extra_ms=self.warmup_extra_ms,
                measure_ms=self.measure_ms,
            )
        return self._runs[key]

    # ------------------------------------------------------------------
    # figure projections
    # ------------------------------------------------------------------
    def load_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 6(a): load components across the N sweep."""
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            load = self.run(n, radius=radius).metrics.load_components()
            for name, value in load.items():
                series.setdefault(name, []).append(value)
        return series

    def overhead_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 7: overhead components across the N sweep."""
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            over = self.run(n, radius=radius).metrics.overhead_components()
            for name, value in over.items():
                series.setdefault(name, []).append(value)
        return series

    def hop_series(
        self, node_counts: Iterable[int], *, radius: Optional[float] = None
    ) -> Dict[str, List[float]]:
        """Fig. 8: hop components across the N sweep."""
        series: Dict[str, List[float]] = {}
        for n in node_counts:
            hops = self.run(n, radius=radius).metrics.hop_components()
            for name, value in hops.items():
                series.setdefault(name, []).append(value)
        return series
