"""CSV export of bench results, for external plotting.

The bench tables (``benchmarks/results/*.txt``) are human-readable; for
gnuplot/matplotlib post-processing, :func:`series_to_csv` writes the
same series in tidy wide format and :func:`run_to_csv` dumps one
measured run's full metric bundle.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Sequence, Union

__all__ = ["series_to_csv", "run_to_csv"]

PathLike = Union[str, Path]


def series_to_csv(
    path: PathLike,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
) -> Path:
    """Write a figure's series as CSV: one row per x, one column per series.

    Returns the written path.

    Raises
    ------
    ValueError
        If any series' length differs from ``len(xs)``.
    """
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(xs)} x points"
            )
    path = Path(path)
    names = list(series)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label] + names)
        for i, x in enumerate(xs):
            writer.writerow([x] + [series[name][i] for name in names])
    return path


def run_to_csv(path: PathLike, run) -> Path:
    """Dump one :class:`~repro.workload.scenario.MeasuredRun`'s metrics.

    Tidy long format: ``section,metric,value`` rows covering the load,
    overhead, hops and latency bundles plus run metadata.
    """
    path = Path(path)
    summary = run.metrics.summary()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["section", "metric", "value"])
        writer.writerow(["meta", "n_nodes", run.system.n_nodes])
        writer.writerow(["meta", "measured_ms", run.measured_ms])
        writer.writerow(["meta", "queries_posted", run.queries_posted])
        writer.writerow(["meta", "total_load", summary["total_load"]])
        for section in ("load", "overhead", "hops", "latency_ms", "reliability"):
            for metric, value in summary[section].items():
                writer.writerow([section, metric, value])
    return path


def series_to_csv_string(x_label: str, xs, series) -> str:
    """Like :func:`series_to_csv` but returning the CSV text (for tests)."""
    buf = io.StringIO()
    names = list(series)
    writer = csv.writer(buf)
    writer.writerow([x_label] + names)
    for i, x in enumerate(xs):
        writer.writerow([x] + [series[name][i] for name in names])
    return buf.getvalue()
