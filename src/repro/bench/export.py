"""CSV export of bench results, for external plotting.

The bench tables (``benchmarks/results/*.txt``) are human-readable; for
gnuplot/matplotlib post-processing, :func:`series_to_csv` writes the
same series in tidy wide format and :func:`run_to_csv` dumps one
measured run's full metric bundle.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Sequence, Union

__all__ = [
    "series_to_csv",
    "series_to_csv_string",
    "run_to_csv",
    "stats_to_csv_string",
]

PathLike = Union[str, Path]


def series_to_csv(
    path: PathLike,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
) -> Path:
    """Write a figure's series as CSV: one row per x, one column per series.

    Returns the written path.

    Raises
    ------
    ValueError
        If any series' length differs from ``len(xs)``.
    """
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(xs)} x points"
            )
    path = Path(path)
    names = list(series)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label] + names)
        for i, x in enumerate(xs):
            writer.writerow([x] + [series[name][i] for name in names])
    return path


def run_to_csv(path: PathLike, run) -> Path:
    """Dump one :class:`~repro.workload.scenario.MeasuredRun`'s metrics.

    Tidy long format: ``section,metric,value`` rows covering the load,
    overhead, hops and latency bundles plus run metadata.
    """
    path = Path(path)
    summary = run.metrics.summary()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["section", "metric", "value"])
        writer.writerow(["meta", "n_nodes", run.system.n_nodes])
        writer.writerow(["meta", "measured_ms", run.measured_ms])
        writer.writerow(["meta", "queries_posted", run.queries_posted])
        writer.writerow(["meta", "total_load", summary["total_load"]])
        for section in (
            "load",
            "overhead",
            "hops",
            "latency_ms",
            "reliability",
            "replication",
            "load_balance",
        ):
            for metric, value in summary[section].items():
                writer.writerow([section, metric, value])
    return path


def stats_to_csv_string(stats) -> str:
    """Dump every :class:`~repro.sim.network.MessageStats` counter as CSV.

    Rows are ``counter,key,value`` with keys sorted, so two runs produce
    byte-identical output exactly when their message accounting is
    identical — the comparison the determinism regression test makes.
    Float values are written with ``repr`` (shortest exact form), so
    even latency sums must match bit-for-bit.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["counter", "key", "value"])

    counters = [
        ("sends", stats.sends),
        ("receives", stats.receives),
        ("sends_by_kind", stats.sends_by_kind),
        ("originations", stats.originations),
        ("drops_per_kind", stats.drops_per_kind),
        ("duplicates_by_kind", stats.duplicates_by_kind),
        ("duplicates_suppressed", stats.duplicates_suppressed),
        ("retransmissions", stats.retransmissions),
        ("dead_letters", stats.dead_letters),
        ("reliable_sends", stats.reliable_sends),
        ("reliable_acked", stats.reliable_acked),
        ("reliable_cancelled", stats.reliable_cancelled),
        ("unknown_payloads", stats.unknown_payloads),
        ("read_repairs", stats.read_repairs),
        ("handoffs_enqueued", stats.handoffs_enqueued),
        ("handoffs_drained", stats.handoffs_drained),
        ("publishes_shed", stats.publishes_shed),
        ("backpressure_signals", stats.backpressure_signals),
        ("source_throttles", stats.source_throttles),
        ("mbrs_migrated", stats.mbrs_migrated),
    ]
    for name, counter in counters:
        for key in sorted(counter, key=repr):
            writer.writerow([name, repr(key), counter[key]])
    for name, table in (
        ("hops_by_kind", stats.hops_by_kind),
        ("latency_by_kind", stats.latency_by_kind),
    ):
        for kind in sorted(table):
            total, count = table[kind]
            writer.writerow([name, kind, f"{total!r}/{count!r}"])
    writer.writerow(["meta", "in_flight_at_reset", stats.in_flight_at_reset])
    return buf.getvalue()


def series_to_csv_string(x_label: str, xs, series) -> str:
    """Like :func:`series_to_csv` but returning the CSV text (for tests)."""
    buf = io.StringIO()
    names = list(series)
    writer = csv.writer(buf)
    writer.writerow([x_label] + names)
    for i, x in enumerate(xs):
        writer.writerow([x] + [series[name][i] for name in names])
    return buf.getvalue()
