"""Plain-text rendering of the paper's tables and figure series.

The benches regenerate each figure as a table: the x-axis (number of
nodes) across columns and one row per series (figure legend entry),
which makes "who wins, by roughly what factor, where crossovers fall"
readable in CI logs without plotting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "format_histogram"]


def format_table(title: str, columns: Sequence[str], rows: List[Sequence]) -> str:
    """Render a simple aligned table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in str_rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
) -> str:
    """Render a figure as a table: x values as columns, series as rows."""
    columns = [x_label] + [str(x) for x in xs]
    rows = [[name] + list(values) for name, values in series.items()]
    return format_table(title, columns, rows)


def format_histogram(
    title: str, counts: Sequence[int], edges: Sequence[float], width: int = 40
) -> str:
    """Render a histogram with unicode-free ASCII bars."""
    peak = max(counts) if len(counts) else 1
    lines = [title, "=" * len(title)]
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / peak)) if peak else ""
        lines.append(f"[{edges[i]:8.2f}, {edges[i + 1]:8.2f})  {str(c).rjust(5)}  {bar}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
