"""Benchmark harness: sweeps, caching, and paper-style reporting."""

from .export import run_to_csv, series_to_csv
from .harness import DEFAULT_MEASURE_MS, PAPER_NODE_COUNTS, SweepCache
from .report import format_histogram, format_series, format_table

__all__ = [
    "DEFAULT_MEASURE_MS",
    "PAPER_NODE_COUNTS",
    "SweepCache",
    "run_to_csv",
    "series_to_csv",
    "format_histogram",
    "format_series",
    "format_table",
]
