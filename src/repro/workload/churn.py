"""Churn workloads: scheduled and stochastic membership dynamics.

The paper claims the middleware "accommodates dynamic changes such as
data center failures ... without the need to temporarily block the
normal system operation" but never quantifies it.  :class:`ChurnWorkload`
makes the claim measurable: it drives a Poisson process of crash
failures and compensating joins against a running
:class:`~repro.core.system.StreamIndexSystem` (which must have its
stabilizer attached), so benches and tests can measure query
availability and load under sustained membership change.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.system import StreamIndexSystem
from ..streams.generators import RandomWalkGenerator

__all__ = ["ChurnWorkload"]


class ChurnWorkload:
    """Poisson crash/join churn against a live deployment.

    Parameters
    ----------
    system:
        The deployment; must be built ``with_stabilizer=True``.
    fail_rate_per_s / join_rate_per_s:
        Poisson rates of crash failures and of fresh joins.  Equal rates
        keep the expected membership constant.
    min_nodes:
        Failures are suppressed when membership would drop below this
        (prevents degenerate rings in long runs).
    protect:
        Node ids never selected as crash victims (e.g. the measurement
        client).
    attach_stream_on_join:
        Give each joiner a fresh random-walk stream, as the paper's
        "addition of new data centers as well as new streams" envisions.
    """

    def __init__(
        self,
        system: StreamIndexSystem,
        *,
        fail_rate_per_s: float = 0.1,
        join_rate_per_s: float = 0.1,
        min_nodes: int = 4,
        protect: Optional[List[int]] = None,
        attach_stream_on_join: bool = True,
    ) -> None:
        if system.stabilizer is None:
            raise ValueError("ChurnWorkload requires a system with_stabilizer=True")
        if fail_rate_per_s < 0 or join_rate_per_s < 0:
            raise ValueError("rates must be non-negative")
        if min_nodes < 2:
            raise ValueError("min_nodes must be >= 2")
        self.system = system
        self.fail_rate_per_s = fail_rate_per_s
        self.join_rate_per_s = join_rate_per_s
        self.min_nodes = min_nodes
        self.protect = set(protect or [])
        self.attach_stream_on_join = attach_stream_on_join
        self.rng = system.rngs.get("churn")
        self.failures = 0
        self.joins = 0
        self._running = False
        self._join_counter = 0

    # ------------------------------------------------------------------
    def start(self) -> "ChurnWorkload":
        """Begin both Poisson processes.  Returns ``self``."""
        self._running = True
        if self.fail_rate_per_s > 0:
            self._schedule("fail")
        if self.join_rate_per_s > 0:
            self._schedule("join")
        return self

    def stop(self) -> None:
        """Stop generating churn events."""
        self._running = False

    def _schedule(self, kind: str) -> None:
        rate = self.fail_rate_per_s if kind == "fail" else self.join_rate_per_s
        gap_ms = float(self.rng.exponential(1000.0 / rate))
        self.system.sim.schedule(gap_ms, self._fire, kind)

    def _fire(self, kind: str) -> None:
        if not self._running:
            return
        if kind == "fail":
            self._fail_one()
        else:
            self._join_one()
        self._schedule(kind)

    # ------------------------------------------------------------------
    def _fail_one(self) -> None:
        if self.system.n_nodes <= self.min_nodes:
            return
        candidates = [
            a
            for a in self.system.all_apps
            if a.node.alive and a.node_id not in self.protect
        ]
        if not candidates:
            return
        victim = candidates[int(self.rng.integers(len(candidates)))]
        self.system.fail_node(victim)
        self.failures += 1

    def _join_one(self) -> None:
        self._join_counter += 1
        app = self.system.join_node(f"churn-joiner-{self._join_counter}")
        self.joins += 1
        if self.attach_stream_on_join:
            gen = RandomWalkGenerator(
                self.system.rngs.fork("churn-stream", self._join_counter)
            )
            self.system.attach_stream(
                app, f"churn-stream-{self._join_counter}", gen.next_value
            )
