"""Scenario builder: the paper's standard experimental setup in one call.

Sec. V setup: N nodes (50–500), each node sources exactly one
random-walk stream, queries arrive as a Poisson process at a random
node, everything parameterised by Table I.  :func:`build_scenario`
assembles that, and :func:`run_measured` executes the
warmup → reset-stats → measure protocol used by every figure bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.config import MiddlewareConfig
from ..core.metrics import FigureMetrics
from ..core.system import StreamIndexSystem
from .generator import QueryWorkload

__all__ = ["build_scenario", "run_measured", "MeasuredRun"]


def build_scenario(
    n_nodes: int,
    config: Optional[MiddlewareConfig] = None,
    *,
    seed: int = 0,
    radius: Optional[float] = None,
    hit_fraction: float = 0.5,
    mapper=None,
) -> Tuple[StreamIndexSystem, QueryWorkload]:
    """The paper's standard scenario, ready to run.

    Returns the system (streams attached, notification processes
    running) and the not-yet-started query workload.
    """
    system = StreamIndexSystem(n_nodes, config, seed=seed, mapper=mapper)
    system.attach_random_walk_streams()
    workload = QueryWorkload(
        system, radius=radius, hit_fraction=hit_fraction
    )
    return system, workload


@dataclass
class MeasuredRun:
    """Result bundle of one measured experiment."""

    system: StreamIndexSystem
    workload: QueryWorkload
    metrics: FigureMetrics
    measured_ms: float

    @property
    def queries_posted(self) -> int:
        """Queries the workload posted during warmup + measurement."""
        return len(self.workload.posted_query_ids)


def run_measured(
    n_nodes: int,
    *,
    config: Optional[MiddlewareConfig] = None,
    seed: int = 0,
    radius: Optional[float] = None,
    hit_fraction: float = 0.5,
    warmup_extra_ms: float = 2_000.0,
    measure_ms: float = 20_000.0,
    mapper=None,
) -> MeasuredRun:
    """Warm up, reset counters, measure for ``measure_ms``, return metrics.

    This is the protocol behind every Fig. 6/7/8 data point: the warmup
    covers window fill-up plus enough time for the query population to
    build toward steady state; only the measured interval enters the
    reported statistics.
    """
    system, workload = build_scenario(
        n_nodes, config, seed=seed, radius=radius, hit_fraction=hit_fraction,
        mapper=mapper,
    )
    workload.start()
    system.warmup(extra_ms=warmup_extra_ms)
    system.reset_stats()
    system.run(measure_ms)
    return MeasuredRun(
        system=system,
        workload=workload,
        metrics=system.figure_metrics(measure_ms),
        measured_ms=measure_ms,
    )
