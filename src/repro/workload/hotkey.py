"""Zipf-skewed hot-key workload (DESIGN.md §13, EXPERIMENTS.md).

The paper's Sec. V workload spreads routing coordinates over the value
range, which Eq. 6 maps to a tolerably even key distribution.  Real
stream populations are rarely that polite: popularity follows a power
law, and correlated streams (same sensor field, same market) share a
signal *shape* — so their z-normalized first DFT coordinates (Eq. 1)
coincide, and content-based routing funnels a disproportionate share
of publishes onto the few holders owning that coordinate band's keys.

:func:`attach_zipf_hotkey_streams` builds exactly that adversarial
load:

* a **hot cohort** of streams sharing one signal shape — an
  alternating (Nyquist-frequency) oscillation plus small noise, whose
  first-coefficient coordinate sits in a narrow band around 0 with
  width set by the noise-to-amplitude ratio — publishing at Zipf-law
  periods (rank-``i`` stream publishes at a rate ∝ ``1/(i+1)^s``), so
  the band's traffic is itself dominated by a few very fast streams;
* a **cold majority** of the paper's bounded random walks at Table I
  periods — the background the skew is measured against;
* an optional **flash crowd**: a cohort of additional hot streams that
  all start publishing at ``flash_at_ms``, modelling a sudden event
  that redirects traffic into the already-hot band.

The skew this produces is what virtual nodes dilute (more, thinner
arcs inside the hot band → more physical owners sharing it), adaptive
remapping dissolves (equi-depth edges widen the hot band's key image),
and admission control caps (hot holders shed the Zipf head back to its
sources) — the three §13 levers, each measurable via
``StreamIndexSystem.load_skew_ratio``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..core.system import StreamIndexSystem
from ..streams.generators import RandomWalkGenerator

__all__ = ["HotkeyWorkload", "attach_zipf_hotkey_streams"]


@dataclass
class HotkeyWorkload:
    """What :func:`attach_zipf_hotkey_streams` attached, for reporting."""

    hot_streams: List[str]
    cold_streams: List[str]
    flash_streams: List[str]

    @property
    def n_streams(self) -> int:
        return (
            len(self.hot_streams) + len(self.cold_streams) + len(self.flash_streams)
        )


def _buzz_generator(
    rng: np.random.Generator,
    *,
    center: float = 50.0,
    amplitude: float = 5.0,
    noise: float = 1.0,
) -> Callable[[], float]:
    """A hot stream: alternating oscillation plus Gaussian noise.

    The alternation puts the window's energy at the Nyquist frequency,
    so the z-normalized first-coefficient routing coordinate is pinned
    near 0 (only the noise leaks into ``X_1``) — every buzz stream maps
    into the same narrow key band regardless of ``center``.
    """
    sign = 1.0
    def next_value() -> float:
        nonlocal sign
        sign = -sign
        return center + amplitude * sign + float(rng.normal(0.0, noise))

    return next_value


def attach_zipf_hotkey_streams(
    system: StreamIndexSystem,
    *,
    hot_fraction: float = 0.3,
    zipf_s: float = 1.1,
    flash_crowd: int = 0,
    flash_at_ms: float = 0.0,
) -> HotkeyWorkload:
    """Attach one Zipf-skewed stream per physical data center (plus crowd).

    The first ``hot_fraction`` of physical nodes (in ring order) source
    hot buzz streams; the rest source the paper's cold random walks.
    Hot periods follow the Zipf law over the hot ranks starting from
    PMIN; cold streams keep the Table I uniform draw.  ``flash_crowd``
    extra hot streams (spread round-robin over the physical nodes) all
    begin publishing at ``flash_at_ms``.
    """
    if not (0.0 < hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    wl = system.config.workload

    # one app per physical node, first token in ring order (the same
    # selection attach_random_walk_streams makes)
    phys_apps = []
    seen = set()
    for app in system._app_order:
        phys = app.node.physical_name
        if phys in seen:
            continue
        seen.add(phys)
        phys_apps.append(app)

    n_hot = max(1, round(hot_fraction * len(phys_apps)))
    out = HotkeyWorkload([], [], [])
    for idx, app in enumerate(phys_apps):
        rng = system.rngs.fork("hotkey-stream", idx)
        if idx < n_hot:
            sid = f"hot-{idx}"
            period = min(wl.pmax_ms, wl.pmin_ms * (idx + 1) ** zipf_s)
            system.attach_stream(app, sid, _buzz_generator(rng), period_ms=period)
            out.hot_streams.append(sid)
        else:
            sid = f"cold-{idx}"
            gen = RandomWalkGenerator(rng, step=1.0)
            system.attach_stream(app, sid, gen.next_value)
            out.cold_streams.append(sid)
    for j in range(flash_crowd):
        app = phys_apps[j % len(phys_apps)]
        rng = system.rngs.fork("hotkey-flash", j)
        sid = f"flash-{j}"
        system.attach_stream(
            app, sid, _buzz_generator(rng), period_ms=wl.pmin_ms, start_ms=flash_at_ms
        )
        out.flash_streams.append(sid)
    return out
