"""Workload generation: the paper's Sec. V experimental setup."""

from .churn import ChurnWorkload
from .generator import QueryWorkload
from .scenario import MeasuredRun, build_scenario, run_measured

__all__ = ["ChurnWorkload", "QueryWorkload", "MeasuredRun", "build_scenario", "run_measured"]
