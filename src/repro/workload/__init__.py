"""Workload generation: the paper's Sec. V experimental setup."""

from .churn import ChurnWorkload
from .generator import QueryWorkload
from .hotkey import HotkeyWorkload, attach_zipf_hotkey_streams
from .scenario import MeasuredRun, build_scenario, run_measured

__all__ = [
    "ChurnWorkload",
    "QueryWorkload",
    "HotkeyWorkload",
    "attach_zipf_hotkey_streams",
    "MeasuredRun",
    "build_scenario",
    "run_measured",
]
