"""Registry-driven wire format for every ``@payload`` dataclass.

The protocol registry (:data:`repro.core.protocol.PAYLOAD_REGISTRY`) is
the single source of truth for *what* can cross the wire; this module
derives *how* it crosses from the same registry, so sim dispatch and
socket framing can never disagree about the payload inventory
(``python -m repro protocol --json`` pins the shared schema).

Frame layout (all integers big-endian)::

    +----------------+---------+------------------------+
    | length: 4 bytes| version | body: length-1 bytes   |
    |  (version+body)| 1 byte  |  (UTF-8 JSON object)   |
    +----------------+---------+------------------------+

JSON keeps the format dependency-free and debuggable (``nc`` + eyes);
numpy arrays, MBRs, inner-product queries, tuples and non-string-keyed
dicts — the field types the registry's dataclasses actually use — are
carried by a small tagged value codec.  The payload tag is the payload's
class name exactly as registered, its accounting kind rides along via
the codec table for cross-checks, and unknown tags or a foreign version
byte raise :class:`WireError` rather than guessing.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Dict, List, NamedTuple, Tuple, Type

import numpy as np

from ..core.mbr import MBR
from ..core.protocol import PAYLOAD_REGISTRY, registry_items
from ..core.queries import InnerProductQuery
from ..sim.network import Message

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "CodecEntry",
    "codec_table",
    "encode_value",
    "decode_value",
    "encode_payload",
    "decode_payload",
    "encode_message",
    "decode_message",
    "encode_frame",
    "FrameDecoder",
]

#: bumped on any incompatible change to the frame or value codec
WIRE_VERSION = 1

#: refuse to buffer frames beyond this (garbage / wrong-protocol guard)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: reserved key marking a tagged value in the JSON body
_TAG = "__t__"


class WireError(ValueError):
    """A frame or value that cannot be (de)coded safely."""


class CodecEntry(NamedTuple):
    """One payload type's row in the wire codec table."""

    tag: str
    cls: Type
    kind: str
    fields: Tuple[str, ...]


_by_tag: Dict[str, CodecEntry] = {}
_by_cls: Dict[Type, CodecEntry] = {}


def codec_table() -> Dict[str, CodecEntry]:
    """Tag -> codec entry for every registered payload type.

    Derived from the protocol registry in declaration order; rebuilt
    lazily when the registry grows (payload types registered after
    import still serialize).
    """
    if len(_by_tag) != len(PAYLOAD_REGISTRY):
        _by_tag.clear()
        _by_cls.clear()
        for cls, spec in registry_items():
            entry = CodecEntry(
                tag=cls.__name__,
                cls=cls,
                kind=spec.kind,
                fields=tuple(f.name for f in dataclasses.fields(cls)),
            )
            _by_tag[entry.tag] = entry
            _by_cls[cls] = entry
    return _by_tag


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """JSON-able representation of one payload field value."""
    if isinstance(value, np.ndarray):
        return {_TAG: "nd", "dtype": str(value.dtype), "data": value.tolist()}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, MBR):
        return {
            _TAG: "mbr",
            "low": value.low.tolist(),
            "high": value.high.tolist(),
            "stream_id": value.stream_id,
            "count": int(value.count),
            "created": float(value.created),
        }
    if isinstance(value, InnerProductQuery):
        return {
            _TAG: "ipq",
            "stream_id": value.stream_id,
            "index_vector": value.index_vector.tolist(),
            "weight_vector": value.weight_vector.tolist(),
            "lifespan_ms": float(value.lifespan_ms),
            "query_id": int(value.query_id),
        }
    if isinstance(value, tuple):
        return {_TAG: "tu", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _TAG not in value:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _TAG: "map",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {k: decode_value(v) for k, v in value.items()}
        if tag == "nd":
            return np.asarray(value["data"], dtype=np.dtype(value["dtype"]))
        if tag == "mbr":
            return MBR(
                low=np.asarray(value["low"], dtype=float),
                high=np.asarray(value["high"], dtype=float),
                stream_id=value["stream_id"],
                count=value["count"],
                created=value["created"],
            )
        if tag == "ipq":
            return InnerProductQuery(
                stream_id=value["stream_id"],
                index_vector=np.asarray(value["index_vector"], dtype=float),
                weight_vector=np.asarray(value["weight_vector"], dtype=float),
                lifespan_ms=value["lifespan_ms"],
                query_id=value["query_id"],
            )
        if tag == "tu":
            return tuple(decode_value(v) for v in value["items"])
        if tag == "map":
            return {decode_value(k): decode_value(v) for k, v in value["items"]}
        raise WireError(f"unknown value tag {tag!r}")
    return value


# ----------------------------------------------------------------------
# payload / message codec
# ----------------------------------------------------------------------
def encode_payload(payload: Any) -> Dict[str, Any]:
    """``{"p": tag, "f": {field: value}}`` for a registered payload."""
    codec_table()
    entry = _by_cls.get(type(payload))
    if entry is None:
        raise WireError(
            f"payload type {type(payload).__name__} is not in PAYLOAD_REGISTRY"
        )
    return {
        "p": entry.tag,
        "f": {name: encode_value(getattr(payload, name)) for name in entry.fields},
    }


def decode_payload(obj: Dict[str, Any]) -> Any:
    """Rebuild the registered payload a :func:`encode_payload` dict names."""
    entry = codec_table().get(obj.get("p", ""))
    if entry is None:
        raise WireError(f"unknown payload tag {obj.get('p')!r}")
    fields = {name: decode_value(value) for name, value in obj["f"].items()}
    unknown = set(fields) - set(entry.fields)
    if unknown:
        raise WireError(
            f"payload {entry.tag} carries unknown fields {sorted(unknown)}"
        )
    return entry.cls(**fields)


def encode_message(msg: Message) -> Dict[str, Any]:
    """Full overlay-message envelope (identity fields + payload)."""
    return {
        "kind": msg.kind,
        "origin": msg.origin,
        "dest_key": msg.dest_key,
        "hops": msg.hops,
        "born": msg.born,
        "msg_id": msg.msg_id,
        "root_id": msg.root_id,
        "tag": msg.tag,
        "payload": encode_payload(msg.payload),
    }


def decode_message(env: Dict[str, Any]) -> Message:
    """Inverse of :func:`encode_message`."""
    return Message(
        kind=env["kind"],
        payload=decode_payload(env["payload"]),
        origin=env["origin"],
        dest_key=env["dest_key"],
        hops=env.get("hops", 0),
        born=env.get("born", 0.0),
        msg_id=env["msg_id"],
        root_id=env.get("root_id", -1),
        tag=env.get("tag", ""),
    )


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Length-prefix + version byte + compact JSON body."""
    body = json.dumps(obj, separators=(",", ":"), allow_nan=True).encode("utf-8")
    if 1 + len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return _LENGTH.pack(1 + len(body)) + bytes([WIRE_VERSION]) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever the socket produced; it returns every complete
    frame body as a decoded JSON object and buffers the remainder.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buf.extend(data)
        out: List[Dict[str, Any]] = []
        while True:
            if len(self._buf) < _LENGTH.size:
                return out
            (length,) = _LENGTH.unpack_from(self._buf)
            if length < 1 or length > MAX_FRAME_BYTES:
                raise WireError(f"bad frame length {length}")
            if len(self._buf) < _LENGTH.size + length:
                return out
            start = _LENGTH.size
            version = self._buf[start]
            if version != WIRE_VERSION:
                raise WireError(
                    f"wire version {version} != supported {WIRE_VERSION}"
                )
            body = bytes(self._buf[start + 1 : start + length])
            del self._buf[: start + length]
            obj = json.loads(body.decode("utf-8"))
            if not isinstance(obj, dict):
                raise WireError("frame body must be a JSON object")
            out.append(obj)
