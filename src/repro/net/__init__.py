"""Transport layer: the seam between protocol brain and message fabric.

The middleware's dispatch layer (:mod:`repro.core.runtime`), reliability
state machine (:mod:`repro.core.reliable`) and the Fig. 5 role services
never touch a concrete fabric directly; they speak to the
:class:`~repro.net.transport.Transport` surface defined here.  Two
implementations exist:

* :class:`~repro.net.transport.SimTransport` — adapts the discrete-event
  :class:`~repro.sim.network.Network` + :class:`~repro.sim.engine.Simulator`
  pair; fully deterministic, used by every experiment and test.
* :class:`~repro.net.peer.AsyncioTransport` — real length-prefixed frames
  over TCP sockets between OS processes (:mod:`repro.net.peer`); wall
  clock, event-loop timers, one-hop routing over a full-membership ring
  mirror.

:mod:`repro.net.wire` derives the wire format for every ``@payload``
dataclass from the protocol registry, so sim dispatch and the socket
format share one source of truth (DESIGN.md §12).

This package is the only place in the tree allowed to import ``socket``,
``asyncio`` or ``threading`` (simlint rule D012).
"""

from .transport import SimTransport, Transport, TransportHandle

__all__ = ["Transport", "TransportHandle", "SimTransport"]
