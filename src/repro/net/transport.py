"""The ``Transport`` seam and its simulator-backed implementation.

Everything the dispatch layer needs from a message fabric fits in one
small surface: a clock, a timer wheel, four send primitives and two
observability accessors.  The role services, :class:`NodeRuntime` and
:class:`ReliableSender` are written against this surface only — they
must never import :class:`repro.sim.network.Network` directly — so the
same protocol brain runs unchanged inside the discrete-event simulator
and as an OS process over real sockets (DESIGN.md §12).

Contract notes shared by all implementations:

* ``now`` is milliseconds on the transport's clock (virtual for the
  simulator, monotonic wall clock for asyncio).  Payload timestamps and
  soft-state expiries are only ever compared against the same clock.
* Local deliveries (the sending node owns ``dest_key``) are synchronous:
  the handler runs before the send call returns.  Remote deliveries are
  asynchronous.
* ``schedule`` returns a cancellable handle; callbacks fire on the
  transport's own event loop, never concurrently with handlers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chord.dht import DhtOverlay
    from ..chord.node import ChordNode
    from ..core.multicast import RangeMulticast
    from ..sim.engine import Simulator
    from ..sim.network import Message, MessageStats, Network

__all__ = ["Transport", "TransportHandle", "SimTransport"]

#: ``on_delivered`` continuation signature shared by the send primitives
DeliveredFn = Callable[["ChordNode", "Message"], None]


@runtime_checkable
class TransportHandle(Protocol):
    """Cancellable handle returned by :meth:`Transport.schedule`."""

    def cancel(self) -> None:
        """Revoke the scheduled callback (idempotent)."""


@runtime_checkable
class Transport(Protocol):
    """What the protocol brain asks of a message fabric."""

    @property
    def now(self) -> float:
        """Current time in milliseconds on this transport's clock."""

    def schedule(
        self, delay_ms: float, fn: Callable[..., None], *args: Any
    ) -> TransportHandle:
        """Run ``fn(*args)`` after ``delay_ms`` on the transport loop."""

    @property
    def stats(self) -> "MessageStats":
        """The live message-accounting object (epoch-swapped on reset)."""

    @property
    def tracer(self) -> Optional[Any]:
        """The attached message tracer, or ``None``."""

    def route(
        self,
        node: "ChordNode",
        msg: "Message",
        *,
        transit_kind: str,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> None:
        """Route ``msg`` towards the owner of ``msg.dest_key``."""

    def send_direct(
        self,
        node: "ChordNode",
        target: "ChordNode",
        msg: "Message",
        *,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> None:
        """One hop to a node whose address is already known."""

    def disseminate(
        self,
        node: "ChordNode",
        payload: Any,
        *,
        kind: str,
        transit_kind: str,
        low_key: int,
        high_key: int,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> "Message":
        """Start a range multicast over ``[low_key, high_key]``."""

    def continue_span(
        self,
        node: "ChordNode",
        msg: "Message",
        *,
        low_key: int,
        high_key: int,
        span_kind: str,
    ) -> int:
        """Forward a range-multicast spread from a covered node."""


class SimTransport:
    """The discrete-event fabric behind the :class:`Transport` surface.

    A zero-logic adapter: every call delegates to the simulator, overlay
    or multicast object the system already built, preserving event order
    exactly — the lossy seed-11 byte-identity pin (PERFORMANCE.md) holds
    across the seam refactor because this class adds no behaviour.

    ``stats`` and ``tracer`` are live properties rather than captured
    references: ``StreamIndexSystem.reset_stats`` swaps a fresh
    :class:`MessageStats` onto the network mid-run, and the seam must
    observe the swap.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        overlay: "DhtOverlay",
        multicast: "RangeMulticast",
    ) -> None:
        self._sim = sim
        self._network = network
        self._overlay = overlay
        self._multicast = multicast

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self._sim.now

    def schedule(
        self, delay_ms: float, fn: Callable[..., None], *args: Any
    ) -> TransportHandle:
        return self._sim.schedule(delay_ms, fn, *args)

    # -- observability -------------------------------------------------
    @property
    def stats(self) -> "MessageStats":
        return self._network.stats

    @property
    def tracer(self) -> Optional[Any]:
        return self._network.tracer

    # -- send primitives -----------------------------------------------
    def route(
        self,
        node: "ChordNode",
        msg: "Message",
        *,
        transit_kind: str,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> None:
        self._overlay.route(
            node, msg, transit_kind=transit_kind, on_delivered=on_delivered
        )

    def send_direct(
        self,
        node: "ChordNode",
        target: "ChordNode",
        msg: "Message",
        *,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> None:
        self._overlay.send_direct(node, target, msg, on_delivered=on_delivered)

    def disseminate(
        self,
        node: "ChordNode",
        payload: Any,
        *,
        kind: str,
        transit_kind: str,
        low_key: int,
        high_key: int,
        on_delivered: Optional[DeliveredFn] = None,
    ) -> "Message":
        return self._multicast.disseminate(
            node,
            payload,
            kind=kind,
            transit_kind=transit_kind,
            low_key=low_key,
            high_key=high_key,
            on_delivered=on_delivered,
        )

    def continue_span(
        self,
        node: "ChordNode",
        msg: "Message",
        *,
        low_key: int,
        high_key: int,
        span_kind: str,
    ) -> int:
        return self._multicast.continue_span(
            node, msg, low_key=low_key, high_key=high_key, span_kind=span_kind
        )
