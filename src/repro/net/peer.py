"""Asyncio peer process: the middleware's protocol brain over real sockets.

``python -m repro node --listen host:port [--join host:port]`` boots one
:class:`PeerNode` — an unchanged :class:`~repro.core.middleware
.StreamIndexNode` (dispatch, reliability, all four Fig. 5 role services)
whose :class:`AsyncioTransport` speaks length-prefixed JSON frames
(:mod:`repro.net.wire`) over TCP instead of simulated hops.

Architecture (DESIGN.md §12):

* **Full-membership mesh, one-hop content routing.**  Every peer keeps a
  local :class:`~repro.chord.ring.ChordRing` mirror of the membership
  (peers are named ``dc-0``, ``dc-1``, … so Chord identifiers match the
  sim reference exactly) and routes each message in a single TCP hop to
  the owner of its destination key.  Range multicast reuses the *same*
  :class:`~repro.core.multicast.RangeMulticast` walk logic over
  successor/predecessor edges of the mirror.
* **Gossip-free membership.**  A newcomer sends ``join`` to its contact;
  the contact answers ``welcome`` (the full member list) and broadcasts
  ``peer-joined``; a departing peer broadcasts ``leave`` on SIGINT /
  SIGTERM.  Adequate for a LAN-scale cluster demo, deliberately simpler
  than the sim's stabilizer.
* **Clients are not ring members.**  ``python -m repro client`` opens a
  short-lived connection and speaks the RPC frames (``publish``,
  ``query``, ``results``, ``status``) handled at the bottom of this
  module.

Determinism boundary: everything in this module runs on the wall clock
and real sockets, so it lives outside the simulator's byte-identity
contract (and outside simlint's D002 wall-clock ban).  The protocol
brain above the seam cannot tell the difference — that is the point.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..chord.node import ChordNode
from ..chord.ring import ChordRing
from ..core.config import MiddlewareConfig
from ..core.mapping import LinearKeyMapper
from ..core.middleware import StreamIndexNode
from ..core.multicast import RangeMulticast
from ..core.queries import SimilarityQuery
from ..sim.network import Message, MessageStats
from ..sim.rng import RngRegistry
from . import wire

__all__ = ["AsyncioTransport", "PeerNode", "PeerSystem", "run_node", "request"]

Addr = Tuple[str, int]


class _MeshOverlay:
    """Overlay facade over the mesh: the surface RangeMulticast needs.

    Implements ``route`` / ``send_direct`` / ``send_to_successor`` /
    ``send_to_predecessor`` with the exact delivery semantics of
    :class:`~repro.chord.dht.DhtOverlay` (local deliveries synchronous,
    ``msg.kind`` restored to the kind it was sent under), except every
    remote leg is one TCP frame to the responsible peer instead of a
    chain of simulated hops.
    """

    def __init__(self, peer: "PeerNode") -> None:
        self.peer = peer

    @property
    def ring(self) -> ChordRing:
        return self.peer.ring

    def route(
        self,
        src: ChordNode,
        msg: Message,
        *,
        transit_kind: str,
        on_delivered: Optional[Callable[[ChordNode, Message], None]] = None,
    ) -> None:
        del transit_kind  # one-hop mesh: nothing travels in transit
        if msg.born == 0.0:
            msg.born = self.peer.transport.now
        owner = self.peer.ring.successor_of_key(msg.dest_key)
        self._emit(src, owner, msg, on_delivered)

    def send_direct(
        self,
        src: ChordNode,
        dst: ChordNode,
        msg: Message,
        *,
        on_delivered: Optional[Callable[[ChordNode, Message], None]] = None,
    ) -> None:
        if msg.born == 0.0:
            msg.born = self.peer.transport.now
        self._emit(src, dst, msg, on_delivered)

    def send_to_successor(self, node: ChordNode, msg: Message, **kw: Any) -> bool:
        succ = node.first_live_successor()
        if succ is None:
            return False
        self.send_direct(node, succ, msg, **kw)
        return True

    def send_to_predecessor(self, node: ChordNode, msg: Message, **kw: Any) -> bool:
        pred = node.predecessor
        if pred is None or not pred.alive:
            return False
        self.send_direct(node, pred, msg, **kw)
        return True

    # ------------------------------------------------------------------
    def _emit(
        self,
        src: ChordNode,
        dst: ChordNode,
        msg: Message,
        on_delivered: Optional[Callable[[ChordNode, Message], None]],
    ) -> None:
        peer = self.peer
        if dst.node_id == peer.node.node_id:
            # local delivery is synchronous and free, as in the sim
            peer.transport.deliver_local(msg)
            if on_delivered is not None:
                on_delivered(dst, msg)
            return
        # remote completion callbacks would need an app-level reply;
        # nothing in the middleware uses them on remote legs
        msg.hops += 1
        peer.transport.stats.record_send(src.node_id, msg.kind)
        peer.send_message(dst, msg)


class AsyncioTransport:
    """The :class:`~repro.net.transport.Transport` surface over asyncio.

    Wall clock (``loop.time()`` in ms), ``loop.call_later`` timers, and
    one-hop framed-socket sends via the mesh overlay.  Owns a private
    :class:`MessageStats` so role services account exactly as they do in
    the sim.
    """

    def __init__(self, peer: "PeerNode") -> None:
        self._peer = peer
        self._overlay = _MeshOverlay(peer)
        self._multicast = RangeMulticast(self._overlay, peer.config.multicast)
        self._stats = MessageStats()

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self._peer.loop.time() * 1000.0

    def schedule(self, delay_ms: float, fn: Callable[..., None], *args: Any):
        return self._peer.loop.call_later(max(0.0, delay_ms) / 1000.0, fn, *args)

    # -- observability -------------------------------------------------
    @property
    def stats(self) -> MessageStats:
        return self._stats

    @property
    def tracer(self) -> None:
        return None

    # -- send primitives -----------------------------------------------
    def route(self, node, msg, *, transit_kind, on_delivered=None) -> None:
        self._overlay.route(
            node, msg, transit_kind=transit_kind, on_delivered=on_delivered
        )

    def send_direct(self, node, target, msg, *, on_delivered=None) -> None:
        self._overlay.send_direct(node, target, msg, on_delivered=on_delivered)

    def disseminate(
        self, node, payload, *, kind, transit_kind, low_key, high_key, on_delivered=None
    ) -> Message:
        return self._multicast.disseminate(
            node,
            payload,
            kind=kind,
            transit_kind=transit_kind,
            low_key=low_key,
            high_key=high_key,
            on_delivered=on_delivered,
        )

    def continue_span(self, node, msg, *, low_key, high_key, span_kind) -> int:
        return self._multicast.continue_span(
            node, msg, low_key=low_key, high_key=high_key, span_kind=span_kind
        )

    # -- ingress -------------------------------------------------------
    def deliver_local(self, msg: Message) -> None:
        """Hand a message (local send or decoded frame) to the app."""
        self._stats.record_delivery(msg, self.now)
        self._peer.app.deliver(self._peer.node, msg)


class PeerSystem:
    """The slice of ``StreamIndexSystem`` a socket-backed node needs.

    :class:`~repro.core.runtime.NodeRuntime` and the role services read
    ``config`` / ``transport`` / ``rngs`` / ``mapper`` /
    ``hierarchy_index`` from their system; everything else they consume
    goes through the Transport seam.
    """

    def __init__(self, peer: "PeerNode", seed: int = 0) -> None:
        self._peer = peer
        self.config = peer.config
        self.rngs = RngRegistry(seed)
        self.mapper = LinearKeyMapper(peer.ring.space)
        self.hierarchy_index = None

    @property
    def transport(self) -> AsyncioTransport:
        return self._peer.transport

    @property
    def sim(self) -> AsyncioTransport:
        # clock/timer duck type for any sim-only escape hatches
        return self._peer.transport

    def _node_alive(self, node_id: int) -> bool:
        return node_id in self._peer.ring.node_ids

    def executes(self, node_id: int) -> bool:
        """Socket runtime has no shard replicas: every local node runs."""
        return True


class PeerNode:
    """One OS-process data center: server, membership, app, transport."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        config: Optional[MiddlewareConfig] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.config = config if config is not None else MiddlewareConfig()
        self.ring = ChordRing(m=self.config.m)
        self.node = self.ring.create_node(name)
        self.ring.build(self.config.successor_list_len)
        #: member name -> (host, port); always includes ourselves
        self.members: Dict[str, Addr] = {name: (host, port)}
        self._node_by_name: Dict[str, ChordNode] = {name: self.node}
        self.transport = AsyncioTransport(self)
        self.system = PeerSystem(self, seed=seed)
        self.app = StreamIndexNode(self.node, self.system)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[Addr, asyncio.StreamWriter] = {}
        self._conn_tasks: set = set()
        self._outbox: "asyncio.Queue[Tuple[Addr, bytes]]" = asyncio.Queue()
        self._sender_task: Optional[asyncio.Task] = None
        self._tick_handle = None
        self._refresh_handle = None
        self._stopping = asyncio.Event()
        self._stream_feed: Dict[str, Deque[float]] = {}
        self.log: Callable[[str], None] = lambda line: print(
            line, file=sys.stderr, flush=True
        )

    # ------------------------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def member_addr(self, node_id: int) -> Optional[Addr]:
        for name, node in self._node_by_name.items():
            if node.node_id == node_id:
                return self.members.get(name)
        return None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _adopt_members(self, entries: List[List[Any]]) -> None:
        """Merge ``[name, host, port]`` rows and rebuild the ring mirror."""
        changed = False
        for name, host, port in entries:
            addr = (str(host), int(port))
            if self.members.get(name) != addr:
                self.members[name] = addr
                changed = True
            if name not in self._node_by_name:
                self._node_by_name[name] = self.ring.create_node(name)
        if changed or len(self._node_by_name) != len(self.ring):
            self.ring.build(self.config.successor_list_len)

    def _drop_member(self, name: str) -> None:
        if name == self.name or name not in self.members:
            return
        addr = self.members.pop(name)
        node = self._node_by_name.pop(name)
        self.ring.remove(node)
        self.ring.build(self.config.successor_list_len)
        writer = self._writers.pop(addr, None)
        if writer is not None:
            writer.close()
        self.log(f"[{self.name}] member {name} left ({len(self.members)} remain)")

    def _member_rows(self) -> List[List[Any]]:
        return [
            [name, host, port]
            for name, (host, port) in sorted(self.members.items())
        ]

    def _broadcast(self, obj: Dict[str, Any], *, exclude: Tuple[str, ...] = ()) -> None:
        for name, addr in self.members.items():
            if name == self.name or name in exclude:
                continue
            self.send_control(addr, obj)

    # ------------------------------------------------------------------
    # egress
    # ------------------------------------------------------------------
    def send_control(self, addr: Addr, obj: Dict[str, Any]) -> None:
        self._outbox.put_nowait((addr, wire.encode_frame(obj)))

    def send_message(self, dst: ChordNode, msg: Message) -> None:
        addr = self.member_addr(dst.node_id)
        if addr is None:
            self.log(f"[{self.name}] no address for node {dst.node_id}; dropped")
            return
        frame = wire.encode_frame({"t": "msg", "m": wire.encode_message(msg)})
        self._outbox.put_nowait((addr, frame))

    async def _writer_for(self, addr: Addr) -> asyncio.StreamWriter:
        writer = self._writers.get(addr)
        if writer is not None and not writer.is_closing():
            return writer
        _reader, writer = await asyncio.open_connection(*addr)
        self._writers[addr] = writer
        return writer

    async def _sender_loop(self) -> None:
        while True:
            addr, data = await self._outbox.get()
            try:
                writer = await self._writer_for(addr)
                writer.write(data)
                await writer.drain()
            except OSError as exc:
                # lossy fabric semantics: the reliable layer retries,
                # soft-state refresh heals the rest
                self._writers.pop(addr, None)
                self.log(f"[{self.name}] send to {addr} failed: {exc}")
            finally:
                self._outbox.task_done()

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = wire.FrameDecoder()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for obj in decoder.feed(data):
                    self._on_frame(obj, writer)
        except asyncio.CancelledError:
            return  # node shutting down: close quietly
        except (OSError, wire.WireError) as exc:
            self.log(f"[{self.name}] connection error: {exc}")
        finally:
            writer.close()

    def _on_frame(self, obj: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        kind = obj.get("t")
        if kind == "msg":
            self.transport.deliver_local(wire.decode_message(obj["m"]))
        elif kind == "join":
            newcomer = obj["name"]
            self._adopt_members([[newcomer, obj["host"], obj["port"]]])
            self.log(f"[{self.name}] {newcomer} joined ({len(self.members)} members)")
            reply = {"t": "welcome", "members": self._member_rows(), "m": self.config.m}
            writer.write(wire.encode_frame(reply))
            self._broadcast(
                {"t": "peer-joined", "name": newcomer, "host": obj["host"], "port": obj["port"]},
                exclude=(newcomer,),
            )
        elif kind == "peer-joined":
            self._adopt_members([[obj["name"], obj["host"], obj["port"]]])
        elif kind == "leave":
            self._drop_member(obj["name"])
        elif kind in ("publish", "query", "results", "status"):
            writer.write(wire.encode_frame(self._client_rpc(kind, obj)))
        else:
            self.log(f"[{self.name}] unknown frame type {kind!r}")

    # ------------------------------------------------------------------
    # client RPC surface
    # ------------------------------------------------------------------
    def _client_rpc(self, kind: str, obj: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if kind == "publish":
                sid = str(obj["stream_id"])
                values = [float(v) for v in obj["values"]]
                feed = self._stream_feed.get(sid)
                if feed is None:
                    feed = self._stream_feed[sid] = deque()
                    self.app.attach_stream(sid, feed.popleft)
                feed.extend(values)
                for _ in range(len(values)):
                    self.app.on_stream_value(sid)
                return {"t": "ok", "stream_id": sid, "ingested": len(values)}
            if kind == "query":
                query = SimilarityQuery(
                    pattern=np.asarray(obj["pattern"], dtype=float),
                    radius=float(obj["radius"]),
                    lifespan_ms=float(obj.get("lifespan_ms", 60_000.0)),
                )
                qid = self.app.post_similarity_query(query)
                return {"t": "ok", "query_id": qid}
            if kind == "results":
                qid = int(obj["query_id"])
                matches = self.app.similarity_results.get(qid, [])
                return {
                    "t": "results",
                    "query_id": qid,
                    "matches": sorted(
                        {m.stream_id: round(m.distance_bound, 9) for m in matches}.items()
                    ),
                }
            # status
            return {
                "t": "status",
                "name": self.name,
                "node_id": self.node.node_id,
                "members": self._member_rows(),
                "held": sorted(self.app.index._mbrs.keys()),
                "streams": sorted(self.app.sources.keys()),
            }
        except Exception as exc:  # RPC errors go back to the client
            return {"t": "error", "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # periodic ticks
    # ------------------------------------------------------------------
    def _notification_tick(self) -> None:
        self.app.on_notification_tick()
        self._tick_handle = self.loop.call_later(
            self.config.workload.nper_ms / 1000.0, self._notification_tick
        )

    def _refresh_tick(self) -> None:
        self.app.on_refresh_tick()
        self._refresh_handle = self.loop.call_later(
            self.config.refresh_period_ms / 1000.0, self._refresh_tick
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, join: Optional[Addr] = None) -> None:
        """Bind the listener, optionally join a cluster, start ticks."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        self.members[self.name] = (self.host, self.port)
        self._sender_task = self.loop.create_task(self._sender_loop())
        if join is not None:
            await self._join_cluster(join)
        self._tick_handle = self.loop.call_later(
            self.config.workload.nper_ms / 1000.0, self._notification_tick
        )
        if self.config.refresh_period_ms > 0:
            self._refresh_handle = self.loop.call_later(
                self.config.refresh_period_ms / 1000.0, self._refresh_tick
            )
        self.log(
            f"[{self.name}] node {self.node.node_id} listening on "
            f"{self.host}:{self.port}"
        )

    async def _join_cluster(self, contact: Addr) -> None:
        reader, writer = await asyncio.open_connection(*contact)
        writer.write(
            wire.encode_frame(
                {"t": "join", "name": self.name, "host": self.host, "port": self.port}
            )
        )
        await writer.drain()
        decoder = wire.FrameDecoder()
        while True:
            data = await reader.read(65536)
            if not data:
                raise ConnectionError(f"contact {contact} closed during join")
            frames = decoder.feed(data)
            if frames:
                welcome = frames[0]
                break
        writer.close()
        if welcome.get("t") != "welcome":
            raise ConnectionError(f"unexpected join reply {welcome.get('t')!r}")
        if welcome.get("m") != self.config.m:
            raise ConnectionError(
                f"ring size mismatch: contact m={welcome.get('m')}, ours {self.config.m}"
            )
        self._adopt_members(welcome["members"])
        self.log(f"[{self.name}] joined cluster of {len(self.members)}")

    async def stop(self, *, announce: bool = True) -> None:
        """Graceful depart: broadcast leave, flush, tear down."""
        if announce and len(self.members) > 1:
            self._broadcast({"t": "leave", "name": self.name})
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._outbox.join(), timeout=0.1)
            await asyncio.sleep(0.05)  # let writes flush
        for handle in (self._tick_handle, self._refresh_handle):
            if handle is not None:
                handle.cancel()
        if self._sender_task is not None:
            self._sender_task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopping.set()

    async def serve_forever(self, join: Optional[Addr] = None) -> None:
        await self.start(join)
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                self.loop.add_signal_handler(signum, stop_requested.set)
        await stop_requested.wait()
        self.log(f"[{self.name}] departing")
        await self.stop()


# ----------------------------------------------------------------------
# CLI entry points (used by ``repro node`` / ``repro client``)
# ----------------------------------------------------------------------
def parse_addr(text: str) -> Addr:
    """``host:port`` -> tuple; host defaults to 127.0.0.1."""
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def run_node(
    listen: str,
    *,
    join: Optional[str] = None,
    name: str,
    config: Optional[MiddlewareConfig] = None,
    seed: int = 0,
) -> int:
    """Blocking entry point behind ``python -m repro node``."""
    host, port = parse_addr(listen)
    peer = PeerNode(name, host, port, config, seed=seed)
    try:
        asyncio.run(peer.serve_forever(parse_addr(join) if join else None))
    except KeyboardInterrupt:
        pass
    return 0


async def _request_async(addr: Addr, obj: Dict[str, Any], timeout: float) -> Dict[str, Any]:
    reader, writer = await asyncio.open_connection(*addr)
    try:
        writer.write(wire.encode_frame(obj))
        await writer.drain()
        decoder = wire.FrameDecoder()
        while True:
            data = await asyncio.wait_for(reader.read(65536), timeout=timeout)
            if not data:
                raise ConnectionError(f"peer {addr} closed without replying")
            frames = decoder.feed(data)
            if frames:
                return frames[0]
    finally:
        writer.close()


def request(connect: str, obj: Dict[str, Any], *, timeout: float = 10.0) -> Dict[str, Any]:
    """One client RPC round trip against a running peer."""
    return asyncio.run(_request_async(parse_addr(connect), obj, timeout))
