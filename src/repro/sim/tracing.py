"""Optional message tracing for debugging and analysis.

The counters in :class:`~repro.sim.network.MessageStats` are cheap but
aggregate; when you need to know *what actually happened* — the exact
hop sequence of an MBR, every replica of a range multicast, the full
journey of one query — attach a :class:`MessageTracer` to the network
and query it afterwards.

Tracing is off by default: the figure sweeps move hundreds of thousands
of messages and keep only counters.
"""

from __future__ import annotations

import csv
import io
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Deque, Iterable, List, Optional, Set, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Message

__all__ = ["TraceEvent", "MessageTracer", "events_from_csv"]

_CSV_COLUMNS = ("time", "event", "src", "dst", "kind", "msg_id", "root_id", "hops")


@dataclass(frozen=True)
class TraceEvent:
    """One traced network event.

    ``event`` is ``"send"`` (transmission started at ``src``),
    ``"deliver"`` (the logical message reached its final destination) or
    ``"unknown"`` (delivered, but no role handler claims the payload
    type — the runtime counted and ignored it).
    """

    time: float
    event: str
    src: int
    dst: int
    kind: str
    msg_id: int
    root_id: int
    hops: int


class MessageTracer:
    """Records network events into a bounded buffer.

    Parameters
    ----------
    capacity:
        Maximum retained events (oldest evicted first); ``None`` keeps
        everything — use only for short runs.
    kinds:
        If given, only these message kinds are recorded.
    """

    def __init__(
        self,
        capacity: Optional[int] = 100_000,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    def record_send(self, time: float, src: int, dst: int, msg: "Message") -> None:
        """Record one physical transmission (called by the network)."""
        self._record(time, "send", src, dst, msg)

    def record_deliver(self, time: float, node: int, msg: "Message") -> None:
        """Record final delivery of a logical message."""
        self._record(time, "deliver", node, node, msg)

    def record_unknown(self, time: float, node: int, msg: "Message") -> None:
        """Record a delivered message whose payload no handler claims."""
        self._record(time, "unknown", node, node, msg)

    def _record(self, time: float, event: str, src: int, dst: int, msg: "Message") -> None:
        if self._kinds is not None and msg.kind not in self._kinds:
            self.dropped += 1
            return
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.dropped += 1  # the eviction the append below causes
        self._events.append(
            TraceEvent(
                time=time,
                event=event,
                src=src,
                dst=dst,
                kind=msg.kind,
                msg_id=msg.msg_id,
                root_id=msg.root_id,
                hops=msg.hops,
            )
        )

    # ------------------------------------------------------------------
    def events(
        self,
        *,
        kind: Optional[str] = None,
        event: Optional[str] = None,
        node: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Filtered view of recorded events, in time order."""
        out = []
        for e in self._events:
            if kind is not None and e.kind != kind:
                continue
            if event is not None and e.event != event:
                continue
            if node is not None and e.src != node and e.dst != node:
                continue
            out.append(e)
        return out

    def journey(self, root_id: int) -> List[TraceEvent]:
        """Every event belonging to one input event's message tree.

        Range multicast derives span copies from the original message;
        they share the original's ``root_id``, so a journey shows the
        routing hops *and* the replication fan-out of a single MBR or
        query.
        """
        return [e for e in self._events if e.root_id == root_id]

    def format_journey(self, root_id: int) -> str:
        """A human-readable rendering of :meth:`journey`."""
        lines = [f"journey of root message {root_id}"]
        for e in self.journey(root_id):
            if e.event == "send":
                lines.append(
                    f"  t={e.time:9.1f}ms  {e.kind:<16} N{e.src} -> N{e.dst}"
                    f"  (hop {e.hops})"
                )
            else:
                lines.append(
                    f"  t={e.time:9.1f}ms  {e.kind:<16} delivered at N{e.dst}"
                    f"  after {e.hops} hop(s)"
                )
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv_string(self) -> str:
        """Render all recorded events as CSV text (header + one row each).

        The format round-trips through :func:`events_from_csv`, so traces
        can be saved, diffed across runs, and reloaded for analysis.
        """
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(_CSV_COLUMNS)
        for e in self._events:
            writer.writerow(
                [repr(e.time), e.event, e.src, e.dst, e.kind, e.msg_id, e.root_id, e.hops]
            )
        return buf.getvalue()

    def export_csv(self, path: Union[str, Path]) -> Path:
        """Write :meth:`to_csv_string` to a file; returns the path."""
        p = Path(path)
        p.write_text(self.to_csv_string())
        return p


def events_from_csv(text: str) -> List[TraceEvent]:
    """Parse CSV produced by :meth:`MessageTracer.to_csv_string`.

    Raises
    ------
    ValueError
        If the header does not match the trace schema.
    """
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or tuple(rows[0]) != _CSV_COLUMNS:
        raise ValueError(f"not a trace CSV (expected header {_CSV_COLUMNS})")
    out: List[TraceEvent] = []
    for row in rows[1:]:
        if not row:
            continue
        time_s, event, src, dst, kind, msg_id, root_id, hops = row
        out.append(
            TraceEvent(
                time=float(time_s),
                event=event,
                src=int(src),
                dst=int(dst),
                kind=kind,
                msg_id=int(msg_id),
                root_id=int(root_id),
                hops=int(hops),
            )
        )
    return out
