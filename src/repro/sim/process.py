"""Periodic processes on top of the event engine.

The paper's workload is dominated by periodic activities: every stream
produces a new value with a fixed per-stream period (chosen uniformly in
150-250 ms), notification exchanges run every ``NPER`` = 2 s, and stored
MBRs/queries expire after their lifespan.  :class:`PeriodicProcess`
captures the recurring pattern once so application code stays free of
rescheduling boilerplate.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import EventHandle, SimulationError, Simulator

__all__ = ["PeriodicProcess", "Timer"]


class PeriodicProcess:
    """Invoke a callback every ``period`` ms until stopped.

    Parameters
    ----------
    sim:
        The simulator that drives the process.
    period:
        Interval between invocations in milliseconds; must be positive.
    fn:
        The zero-argument callback.
    phase:
        Offset of the *first* invocation from :meth:`start` time.
        Defaults to one full period.  Randomising the phase across nodes
        avoids the synchronisation artifact where all nodes in the
        system emit their notification messages in the same instant.
    jitter_fn:
        Optional callable returning a per-tick additive jitter (ms); may
        return negative values as long as the effective period stays
        positive.  Used by stream sources whose period is resampled.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], None],
        *,
        phase: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._fn = fn
        self._phase = period if phase is None else phase
        self._jitter_fn = jitter_fn
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """Whether the process is currently scheduled."""
        return self._running

    @property
    def period(self) -> float:
        """Current base period in milliseconds."""
        return self._period

    def set_period(self, period: float) -> None:
        """Change the period; takes effect from the next tick."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        self._period = period

    def start(self) -> "PeriodicProcess":
        """Schedule the first tick.  Returns ``self`` for chaining."""
        if self._running:
            return self
        self._running = True
        self._handle = self._sim.schedule(self._phase, self._tick)
        return self

    def stop(self) -> None:
        """Cancel the pending tick and stop recurring."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._fn()
        if not self._running:  # fn may have stopped us
            return
        delay = self._period
        if self._jitter_fn is not None:
            delay = max(1e-9, delay + self._jitter_fn())
        self._handle = self._sim.schedule(delay, self._tick)


class Timer:
    """A one-shot timer with reschedule support.

    Used for lifespan expiry of stored MBRs and query subscriptions: a
    fresh MBR for the same stream *extends* the expiry instead of
    stacking a second timer.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], None]) -> None:
        self._sim = sim
        self._fn = fn
        self._handle: Optional[EventHandle] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed."""
        return self._handle is not None and self._handle.pending

    def arm(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` ms from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._fn()
