"""Network fault injection: loss, jitter, duplication, outages.

The seed reproduction's network was a perfect fabric — every hop took a
constant 50 ms and every message arrived exactly once.  Real
content-routed overlays must survive loss, delay variance, duplication
and partitions, so this module makes the fabric *faulty* in a fully
deterministic, seedable way:

* a :class:`FaultPlan` declares the fault model — global and per-link
  message-loss probabilities, a pluggable :class:`DelayModel` (constant,
  jittered, or heavy-tailed hop delays), a duplication probability, and
  timed :class:`LinkOutage` windows;
* a :class:`FaultInjector` executes the plan against an RNG substream
  (from :class:`repro.sim.rng.RngRegistry`), judging every physical hop:
  drop it (and why), delay it (by how much), or deliver it twice.

:class:`repro.sim.network.Network` consults the injector on every
:meth:`~repro.sim.network.Network.hop`; drops and duplicates are
recorded per message kind in
:class:`~repro.sim.network.MessageStats`.  Because the injector draws
from a named substream of the root seed, two runs with the same seed
inject byte-identical fault sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "JitteredDelay",
    "HeavyTailDelay",
    "LinkOutage",
    "FaultPlan",
    "HopVerdict",
    "FaultInjector",
    "DROP_LOSS",
    "DROP_LINK_LOSS",
    "DROP_OUTAGE",
    "DROP_DEAD_DEST",
]

#: drop-reason tags recorded alongside the message kind
DROP_LOSS = "loss"
DROP_LINK_LOSS = "link_loss"
DROP_OUTAGE = "outage"
DROP_DEAD_DEST = "dead_dest"


class DelayModel:
    """Per-hop delay distribution; subclasses implement :meth:`sample`."""

    def sample(self, rng: np.random.Generator) -> float:
        """One hop delay in ms (non-negative)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """The paper's model: every hop takes exactly ``delay_ms``."""

    delay_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay_ms


@dataclass(frozen=True)
class JitteredDelay(DelayModel):
    """Uniform jitter around a base delay: ``base ± jitter`` (clamped at 0)."""

    base_ms: float = 50.0
    jitter_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.jitter_ms < 0:
            raise ValueError("base_ms and jitter_ms must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, self.base_ms + float(rng.uniform(-self.jitter_ms, self.jitter_ms)))


@dataclass(frozen=True)
class HeavyTailDelay(DelayModel):
    """Base delay plus a capped Pareto tail — occasional very slow hops.

    The tail term is ``scale_ms * Pareto(alpha)``, truncated at
    ``cap_ms`` so a single unlucky draw cannot stall a bounded
    simulation indefinitely.
    """

    base_ms: float = 50.0
    alpha: float = 2.5
    scale_ms: float = 10.0
    cap_ms: float = 2_000.0

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.scale_ms < 0:
            raise ValueError("base_ms and scale_ms must be non-negative")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.cap_ms < 0:
            raise ValueError("cap_ms must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        tail = min(self.cap_ms, self.scale_ms * float(rng.pareto(self.alpha)))
        return self.base_ms + tail


@dataclass(frozen=True)
class LinkOutage:
    """A timed outage window; ``src``/``dst`` of ``None`` match any node.

    An outage with both endpoints wildcarded is a global blackout; with
    only ``dst`` set it isolates one node's inbound links (a one-sided
    partition), etc.  Messages judged during ``[start_ms, end_ms)`` on a
    matching link are dropped with reason :data:`DROP_OUTAGE`.
    """

    start_ms: float
    end_ms: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError("outage must end after it starts")

    def covers(self, now: float, src: int, dst: int) -> bool:
        """Whether the outage blackholes a ``src -> dst`` hop at ``now``."""
        if not (self.start_ms <= now < self.end_ms):
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the network's fault model.

    Attributes
    ----------
    loss_rate:
        Probability in ``[0, 1)`` that any hop silently loses its message.
    duplicate_rate:
        Probability that a delivered hop spawns a second, independently
        delayed copy of the message.
    link_loss:
        Extra per-link loss probabilities keyed by ``(src, dst)`` node
        id; applied on top of (before) the global rate.
    delay_model:
        Hop delay distribution; ``None`` keeps the network's constant
        default.
    outages:
        Timed link/partition outage windows.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    link_loss: Dict[Tuple[int, int], float] = field(default_factory=dict)
    delay_model: Optional[DelayModel] = None
    outages: Sequence[LinkOutage] = ()

    def __post_init__(self) -> None:
        for name, rate in (("loss_rate", self.loss_rate),
                           ("duplicate_rate", self.duplicate_rate)):
            if not (0.0 <= rate < 1.0):
                raise ValueError(f"{name} must be in [0, 1)")
        for link, rate in self.link_loss.items():
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"link_loss[{link!r}] must be in [0, 1]")

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing and keeps the default delay."""
        return (
            self.loss_rate == 0.0
            and self.duplicate_rate == 0.0
            and not self.link_loss
            and self.delay_model is None
            and not self.outages
        )


@dataclass
class HopVerdict:
    """The injector's decision for one physical hop."""

    #: empty string = deliver; otherwise the drop reason tag
    drop_reason: str = ""
    #: delay of the primary copy (ms); unused when dropped
    delay_ms: float = 0.0
    #: delay of the duplicate copy, or ``None`` when not duplicated
    duplicate_delay_ms: Optional[float] = None

    @property
    def dropped(self) -> bool:
        return bool(self.drop_reason)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a deterministic RNG stream.

    Parameters
    ----------
    plan:
        The fault model to apply.
    rng:
        A dedicated generator (use a named
        :class:`~repro.sim.rng.RngRegistry` substream so fault decisions
        do not perturb workload randomness).
    default_delay_ms:
        Hop delay used when the plan supplies no :class:`DelayModel`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        rng: np.random.Generator,
        *,
        default_delay_ms: float = 50.0,
    ) -> None:
        self.plan = plan
        self.rng = rng
        self.delay_model: DelayModel = (
            plan.delay_model if plan.delay_model is not None
            else ConstantDelay(default_delay_ms)
        )
        #: injected events by (kind, what) for debugging/tests
        self.injected: Counter[Tuple[str, str]] = Counter()

    # ------------------------------------------------------------------
    def sample_delay(self) -> float:
        """Draw one hop delay from the plan's delay model."""
        return self.delay_model.sample(self.rng)

    def judge(self, src: int, dst: int, kind: str, now: float) -> HopVerdict:
        """Decide the fate of one ``src -> dst`` hop of a ``kind`` message.

        Checks, in order: outage windows (deterministic, no RNG draw),
        per-link loss, global loss; surviving messages get a sampled
        delay and possibly a duplicate with its own sampled delay.
        """
        for outage in self.plan.outages:
            if outage.covers(now, src, dst):
                self.injected[(kind, DROP_OUTAGE)] += 1
                return HopVerdict(drop_reason=DROP_OUTAGE)
        link_rate = self.plan.link_loss.get((src, dst), 0.0)
        if link_rate > 0.0 and float(self.rng.random()) < link_rate:
            self.injected[(kind, DROP_LINK_LOSS)] += 1
            return HopVerdict(drop_reason=DROP_LINK_LOSS)
        if self.plan.loss_rate > 0.0 and float(self.rng.random()) < self.plan.loss_rate:
            self.injected[(kind, DROP_LOSS)] += 1
            return HopVerdict(drop_reason=DROP_LOSS)
        verdict = HopVerdict(delay_ms=self.sample_delay())
        if (
            self.plan.duplicate_rate > 0.0
            and float(self.rng.random()) < self.plan.duplicate_rate
        ):
            self.injected[(kind, "duplicate")] += 1
            verdict.duplicate_delay_ms = self.sample_delay()
        return verdict
