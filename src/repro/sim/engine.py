"""Discrete-event simulation engine.

The engine is the substrate everything else runs on: the Chord overlay,
the per-hop message network, the periodic stream sources, and the query
workload are all expressed as timed callbacks scheduled on a single
:class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **milliseconds** of simulated time.  The paper's
  runtime constants (50 ms per routing hop, 150-250 ms stream periods,
  2 s notification period, 5 s MBR lifespan) are all naturally expressed
  in this unit.
* Two interchangeable event-queue backends implement the same
  ``(time, seq)`` total order (``seq`` is a monotonically increasing
  tiebreaker, so same-instant events fire in FIFO order and the
  simulation is fully deterministic):

  - ``"heap"`` — a binary heap of ``(time, seq, handle)`` tuples
    (``heapq``).  Entries stay plain tuples on purpose: heap sifting
    then compares floats/ints at C speed instead of calling a
    Python-level ``__lt__``.  This is the differential-testing oracle.
  - ``"calendar"`` — a bucketed :class:`CalendarQueue` (Brown 1988)
    tuned for the paper's periodic-tick event distribution, giving
    amortised O(1) enqueue/dequeue independent of queue length.  See
    PERFORMANCE.md for the bucket-sizing heuristics and for when the
    heap backend still wins.

  Both backends pop the **exact same event sequence** for a given
  schedule history; ``tests/sim/test_calendar_queue.py`` and the
  fig6a/lossy differential tests enforce this bit-for-bit.
* Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle and
  the main loop discards cancelled entries when they surface.  This keeps
  ``schedule``/``cancel`` at O(log n)/O(1).
* Handles are **pooled** (see PERFORMANCE.md): the run loop recycles a
  fired handle onto a free list when ``sys.getrefcount`` proves the
  engine holds the only reference, so steady-state scheduling allocates
  no handle objects.  Holding on to a returned handle (as timers and
  reliable-delivery retries do) simply keeps it out of the pool — a
  retained handle is never reused under the caller's feet.  Pooling
  works identically on both queue backends: each backend drops its
  container reference to the entry tuple *before* the refcount check.
* The engine itself never reads wall clocks or RNGs (simlint D002/D008);
  its cost is exposed through the deterministic op counters of
  :mod:`repro.perf.counters` instead.
"""

from __future__ import annotations

import heapq
import sys
from bisect import insort
from typing import Any, Callable, List, Optional, Tuple

from ..perf import counters as _opc

__all__ = [
    "EventHandle",
    "Simulator",
    "SimulationError",
    "CalendarQueue",
    "SCHEDULER_BACKENDS",
    "DEFAULT_SCHEDULER",
]

#: free-list bound: enough to absorb any realistic cancelled-entry burst
#: without letting a pathological one pin memory.
_POOL_LIMIT = 4096

#: the queue backends :class:`Simulator` accepts.
SCHEDULER_BACKENDS = ("heap", "calendar")

#: backend used when none is requested.  The heap is kept as the default
#: production backend and differential oracle; the calendar queue is a
#: drop-in alternative selected per-run (``Simulator(backend=...)`` or
#: ``MiddlewareConfig.scheduler``).  PERFORMANCE.md records the measured
#: crossover between the two on this repo's workloads.
DEFAULT_SCHEDULER = "heap"


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the past or running a
    simulator that has already been stopped and drained.
    """


class EventHandle:
    """A cancellable reference to a scheduled event.

    Attributes
    ----------
    time:
        Simulated time (ms) at which the callback fires.
    seq:
        FIFO tiebreaker assigned by the simulator.
    fn:
        The callback to invoke with ``args`` (``None`` once the event
        has fired or been cancelled).
    args:
        Positional arguments bound at scheduling time.  Stored on the
        handle instead of inside a closure so the hot path allocates no
        lambda per event.
    cancelled:
        ``True`` once :meth:`cancel` has been called; the engine skips
        cancelled events when they reach the head of the queue.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Optional[Callable[..., None]],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        self.fn = None  # release closure references early
        self.args = ()

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled to fire."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.pending else ("cancelled" if self.cancelled else "fired")
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


_Entry = Tuple[float, int, EventHandle]


class CalendarQueue:
    """A bucketed priority queue over ``(time, seq, handle)`` entries.

    The classic calendar-queue structure (R. Brown, CACM 1988): a ring
    of ``n_buckets`` buckets, each ``width`` ms of simulated time wide.
    An entry at time ``t`` lives in bucket ``ord(t) % n_buckets`` where
    ``ord(t) = int(t / width)`` is the absolute *window ordinal*.  A
    search pointer walks windows in order; within one window the bucket
    holds at most a handful of entries, kept time-sorted by C-level
    ``bisect.insort``, so both enqueue and dequeue are amortised O(1)
    for the periodic-tick distributions this simulator produces
    (stream periods 150-250 ms, 2 s notifications, 50 ms hops).

    Total-order contract: :meth:`pop` yields entries in exactly
    ascending ``(time, seq)`` order — byte-identical to draining a
    ``heapq`` of the same entries.  The window membership test uses the
    *same* ``int(t * inv_width)`` expression as the insertion mapping,
    so float rounding at bucket boundaries can never disagree between
    the two sides.

    Resizing: the bucket count doubles when occupancy exceeds two
    entries per bucket and halves below a quarter entry per bucket;
    each rebuild re-estimates the bucket width from the mean gap of the
    64 soonest entries (the head region), clamped to
    ``[0.001 ms, 60 000 ms]``.  Sampling the head — not the whole queue
    — keeps a few long-lived timers (BSPAN expiries, retry backoffs)
    from stretching the width until every near-future tick lands in one
    bucket.
    """

    __slots__ = (
        "_buckets",
        "_mask",
        "_width",
        "_inv_width",
        "_count",
        "_ord",
        "resizes",
    )

    #: bucket-count floor; resizing never shrinks below this.
    MIN_BUCKETS = 32
    #: width-estimate clamp (ms): keeps degenerate gap samples (bursts
    #: of simultaneous events / a lone far-future timer) from producing
    #: pathological bucket widths.
    MIN_WIDTH = 1e-3
    MAX_WIDTH = 60_000.0
    #: number of soonest entries sampled for the width estimate.
    SAMPLE = 64

    def __init__(self, n_buckets: int = MIN_BUCKETS, width: float = 16.0) -> None:
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise ValueError(f"n_buckets must be a power of two, got {n_buckets}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width!r}")
        self._buckets: List[List[_Entry]] = [[] for _ in range(n_buckets)]
        self._mask = n_buckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._count = 0
        #: absolute window ordinal of the search pointer; a committed
        #: lower bound on ``int(entry_time * inv_width)`` of every entry.
        self._ord = 0
        #: number of rebuilds performed (introspection for tests/benches).
        self.resizes = 0

    def __len__(self) -> int:
        return self._count

    @property
    def n_buckets(self) -> int:
        """Current bucket-ring size (introspection)."""
        return self._mask + 1

    @property
    def width(self) -> float:
        """Current bucket width in ms (introspection)."""
        return self._width

    def push(self, entry: _Entry) -> None:
        """Insert an entry; O(1) amortised.

        The search pointer is a *lower bound* on every queued entry's
        window ordinal.  A push into an earlier window than the pointer
        (possible when the previous head was far in the future) simply
        drags the pointer back, so the scan in :meth:`pop` can never
        step over the new head.
        """
        o = int(entry[0] * self._inv_width)
        if not self._count or o < self._ord:
            self._ord = o
        insort(self._buckets[o & self._mask], entry)
        self._count += 1
        if self._count > 2 * (self._mask + 1):
            self._resize((self._mask + 1) * 2)

    def pop(self, limit: Optional[float] = None) -> Optional[_Entry]:
        """Remove and return the least ``(time, seq)`` entry.

        Returns ``None`` if the queue is empty, or — when ``limit`` is
        given — if the least entry's time exceeds ``limit`` (the entry
        stays queued and the search pointer is left uncommitted, so a
        later, earlier-windowed push is still found).
        """
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        o = self._ord
        for _ in range(mask + 1):
            b = buckets[o & mask]
            if b:
                e = b[0]
                if int(e[0] * inv) == o:
                    if limit is not None and e[0] > limit:
                        return None
                    del b[0]
                    self._count -= 1
                    self._ord = o
                    if self._count < (mask + 1) >> 2 and mask + 1 > self.MIN_BUCKETS:
                        self._resize((mask + 1) >> 1)
                    return e
            o += 1
        # Sparse queue: one full ring walk found nothing in-window.
        # Fall back to a direct scan for the globally minimal head and
        # jump the pointer to its window.
        best: Optional[_Entry] = None
        for b in buckets:
            if b and (best is None or b[0] < best):
                best = b[0]
        assert best is not None  # count > 0 guarantees a head exists
        if limit is not None and best[0] > limit:
            return None
        o = int(best[0] * inv)
        del buckets[o & mask][0]
        self._count -= 1
        self._ord = o
        return best

    def _resize(self, n_new: int) -> None:
        """Rebuild with ``n_new`` buckets and a re-estimated width."""
        entries: List[_Entry] = []
        for b in self._buckets:
            entries.extend(b)
        entries.sort()
        # Width estimate from the mean gap of *distinct* times in the
        # head region.  Same-instant bursts (batched MBR publishes, a
        # churn wave) are one dequeue position each, so counting their
        # duplicates would crush the estimate toward zero and leave
        # every pop walking hundreds of empty windows.
        distinct = 0
        first = last = 0.0
        prev = None
        for e in entries[: self.SAMPLE]:
            t = e[0]
            if t != prev:
                if distinct == 0:
                    first = t
                last = t
                distinct += 1
                prev = t
        if distinct >= 2:
            gap = (last - first) / (distinct - 1)
            # ~3 distinct instants per window on a uniform spread;
            # clamped so degenerate samples stay sane.
            width = gap * 3.0
            if width < self.MIN_WIDTH:
                width = self.MIN_WIDTH
            elif width > self.MAX_WIDTH:
                width = self.MAX_WIDTH
            self._width = width
            self._inv_width = 1.0 / width
        self._buckets = [[] for _ in range(n_new)]
        self._mask = n_new - 1
        inv = self._inv_width
        if entries:
            self._ord = int(entries[0][0] * inv)
        # entries are globally sorted, so per-bucket append order stays
        # ascending — no insort needed during the rebuild.
        for e in entries:
            self._buckets[int(e[0] * inv) & self._mask].append(e)
        self.resizes += 1


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock and an event queue.  Events
    are callables scheduled with pre-bound positional arguments.

    Parameters
    ----------
    backend:
        Event-queue implementation: ``"heap"`` (binary heap, the
        differential oracle) or ``"calendar"`` (bucketed calendar
        queue).  Both produce the identical event order; see the module
        docstring and PERFORMANCE.md.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10.0]
    """

    def __init__(self, backend: str = DEFAULT_SCHEDULER) -> None:
        if backend not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown scheduler backend {backend!r}; choose from "
                f"{SCHEDULER_BACKENDS}"
            )
        self.backend = backend
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: List[_Entry] = []
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if backend == "calendar" else None
        )
        self._pool: List[EventHandle] = []
        self._running: bool = False
        self._stopped: bool = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries, including not-yet-discarded cancelled ones."""
        cal = self._cal
        return len(cal) if cal is not None else len(self._queue)

    @property
    def pooled_handles(self) -> int:
        """Size of the handle free list (introspection for tests/benchmarks)."""
        return len(self._pool)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        fn:
            Callback to invoke.
        *args:
            Positional arguments bound to the callback now.

        Returns
        -------
        EventHandle
            A handle that can be used to cancel the event.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        # Body duplicated from schedule_at: this is the hottest call in
        # the engine (one per hop / tick / timer) and the extra frame of
        # a schedule -> schedule_at chain is measurable (PERFORMANCE.md).
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, fn, args)
        cal = self._cal
        if cal is None:
            heapq.heappush(self._queue, (time, seq, handle))
        else:
            cal.push((time, seq, handle))
        c = _opc.ACTIVE
        if c is not None:
            c.inc("sim.scheduled")
        return handle

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Raises
        ------
        SimulationError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, fn, args)
        cal = self._cal
        if cal is None:
            heapq.heappush(self._queue, (time, seq, handle))
        else:
            cal.push((time, seq, handle))
        c = _opc.ACTIVE
        if c is not None:
            c.inc("sim.scheduled")
        return handle

    def _recycle(self, handle: EventHandle) -> None:
        """Return a spent handle to the pool if nothing else references it.

        At the ``getrefcount`` call the engine-owned references are
        exactly three: the run-loop local, this function's parameter and
        ``getrefcount``'s own argument.  A count of 3 therefore proves no
        caller kept the handle, so reusing it can never alias a live
        reference (timers, reliable-delivery retries and tests that
        retain handles keep the count higher and opt out automatically).
        """
        if len(self._pool) < _POOL_LIMIT and sys.getrefcount(handle) == 3:
            handle.fn = None
            handle.args = ()
            self._pool.append(handle)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event is strictly later than
            this time; the clock is advanced to ``until`` on exit so
            repeated ``run(until=...)`` calls form a seamless timeline.
        max_events:
            Safety valve: abort after this many events (useful in tests
            to detect runaway periodic processes).
        """
        self._stopped = False
        self._running = True
        processed = 0
        discarded = 0
        try:
            if self._cal is None:
                processed, discarded = self._drain_heap(until, max_events)
            else:
                processed, discarded = self._drain_calendar(until, max_events)
        finally:
            self._running = False
            c = _opc.ACTIVE
            if c is not None:
                if processed:
                    c.inc("sim.events", processed)
                if discarded:
                    c.inc("sim.cancelled_discarded", discarded)
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def _drain_heap(
        self, until: Optional[float], max_events: Optional[int]
    ) -> Tuple[int, int]:
        """The heap-backed run loop; returns (processed, discarded)."""
        processed = 0
        discarded = 0
        queue = self._queue
        pop = heapq.heappop
        pool = self._pool
        refcount = sys.getrefcount
        while queue and not self._stopped:
            time = queue[0][0]
            if until is not None and time > until:
                break
            _, _, handle = pop(queue)
            fn = handle.fn
            if handle.cancelled or fn is None:
                discarded += 1
                # Inlined _recycle (the per-event call is measurable on
                # this path): the only engine references here are the
                # loop local and getrefcount's argument, hence == 2.
                if len(pool) < _POOL_LIMIT and refcount(handle) == 2:
                    handle.fn = None
                    handle.args = ()
                    pool.append(handle)
                continue
            self._now = time
            args = handle.args
            handle.fn = None  # mark as fired
            handle.args = ()
            if args:
                fn(*args)
            else:
                fn()
            # fn/args were already cleared above; just pool the handle.
            if len(pool) < _POOL_LIMIT and refcount(handle) == 2:
                pool.append(handle)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed, discarded

    def _drain_calendar(
        self, until: Optional[float], max_events: Optional[int]
    ) -> Tuple[int, int]:
        """The calendar-backed run loop; returns (processed, discarded)."""
        processed = 0
        discarded = 0
        cal = self._cal
        assert cal is not None
        pop = cal.pop
        pool = self._pool
        refcount = sys.getrefcount
        while cal._count and not self._stopped:
            entry = pop(until)
            if entry is None:
                break
            time, _seq, handle = entry
            entry = None  # drop the tuple so the refcount check holds
            fn = handle.fn
            if handle.cancelled or fn is None:
                discarded += 1
                # Inlined _recycle; see _drain_heap for the == 2 proof.
                if len(pool) < _POOL_LIMIT and refcount(handle) == 2:
                    handle.fn = None
                    handle.args = ()
                    pool.append(handle)
                continue
            self._now = time
            args = handle.args
            handle.fn = None  # mark as fired
            handle.args = ()
            if args:
                fn(*args)
            else:
                fn()
            # fn/args were already cleared above; just pool the handle.
            if len(pool) < _POOL_LIMIT and refcount(handle) == 2:
                pool.append(handle)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed, discarded

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the queue
            was empty (cancelled entries are drained silently).
        """
        cal = self._cal
        while True:
            if cal is None:
                if not self._queue:
                    return False
                time, _seq, handle = heapq.heappop(self._queue)
            else:
                entry = cal.pop()
                if entry is None:
                    return False
                time, _seq, handle = entry
                entry = None  # drop the tuple so _recycle sees 3 references
            fn = handle.fn
            if handle.cancelled or fn is None:
                self._recycle(handle)
                continue
            self._now = time
            args = handle.args
            handle.fn = None
            handle.args = ()
            if args:
                fn(*args)
            else:
                fn()
            self._recycle(handle)
            self._events_processed += 1
            c = _opc.ACTIVE
            if c is not None:
                c.inc("sim.events")
            return True

    def stop(self) -> None:
        """Request the current :meth:`run` loop to exit after this event."""
        self._stopped = True
