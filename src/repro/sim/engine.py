"""Discrete-event simulation engine.

The engine is the substrate everything else runs on: the Chord overlay,
the per-hop message network, the periodic stream sources, and the query
workload are all expressed as timed callbacks scheduled on a single
:class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **milliseconds** of simulated time.  The paper's
  runtime constants (50 ms per routing hop, 150-250 ms stream periods,
  2 s notification period, 5 s MBR lifespan) are all naturally expressed
  in this unit.
* The event queue is a binary heap of ``(time, seq, handle)`` entries.
  ``seq`` is a monotonically increasing tiebreaker so that events
  scheduled for the same instant fire in FIFO order and the simulation
  is fully deterministic.
* Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle and
  the main loop discards cancelled entries when they surface.  This keeps
  ``schedule``/``cancel`` at O(log n)/O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the past or running a
    simulator that has already been stopped and drained.
    """


@dataclass
class EventHandle:
    """A cancellable reference to a scheduled event.

    Attributes
    ----------
    time:
        Simulated time (ms) at which the callback fires.
    seq:
        FIFO tiebreaker assigned by the simulator.
    fn:
        The zero-argument callback to invoke (arguments are bound at
        scheduling time).
    cancelled:
        ``True`` once :meth:`cancel` has been called; the engine skips
        cancelled events when they reach the head of the queue.
    """

    time: float
    seq: int
    fn: Optional[Callable[[], None]]
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        self.fn = None  # release closure references early

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled to fire."""
        return not self.cancelled and self.fn is not None


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock and an event queue.  Events
    are zero-argument callables; use :func:`functools.partial` or bound
    methods to carry state.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._running: bool = False
        self._stopped: bool = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries, including not-yet-discarded cancelled ones."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        fn:
            Callback to invoke.
        *args:
            Positional arguments bound to the callback now.

        Returns
        -------
        EventHandle
            A handle that can be used to cancel the event.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Raises
        ------
        SimulationError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r}"
            )
        bound = (lambda: fn(*args)) if args else fn
        handle = EventHandle(time=time, seq=self._seq, fn=bound)
        self._seq += 1
        heapq.heappush(self._queue, (time, handle.seq, handle))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event is strictly later than
            this time; the clock is advanced to ``until`` on exit so
            repeated ``run(until=...)`` calls form a seamless timeline.
        max_events:
            Safety valve: abort after this many events (useful in tests
            to detect runaway periodic processes).
        """
        self._stopped = False
        self._running = True
        processed = 0
        try:
            while self._queue and not self._stopped:
                time, _seq, handle = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled or handle.fn is None:
                    continue
                self._now = time
                fn = handle.fn
                handle.fn = None  # mark as fired
                fn()
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the queue
            was empty (cancelled entries are drained silently).
        """
        while self._queue:
            time, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled or handle.fn is None:
                continue
            self._now = time
            fn = handle.fn
            handle.fn = None
            fn()
            self._events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` loop to exit after this event."""
        self._stopped = True
