"""Discrete-event simulation engine.

The engine is the substrate everything else runs on: the Chord overlay,
the per-hop message network, the periodic stream sources, and the query
workload are all expressed as timed callbacks scheduled on a single
:class:`Simulator`.

Design notes
------------
* Time is a ``float`` in **milliseconds** of simulated time.  The paper's
  runtime constants (50 ms per routing hop, 150-250 ms stream periods,
  2 s notification period, 5 s MBR lifespan) are all naturally expressed
  in this unit.
* The event queue is a binary heap of ``(time, seq, handle)`` entries.
  ``seq`` is a monotonically increasing tiebreaker so that events
  scheduled for the same instant fire in FIFO order and the simulation
  is fully deterministic.  Entries stay plain tuples on purpose: heap
  sifting then compares floats/ints at C speed instead of calling a
  Python-level ``__lt__``.
* Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle and
  the main loop discards cancelled entries when they surface.  This keeps
  ``schedule``/``cancel`` at O(log n)/O(1).
* Handles are **pooled** (see PERFORMANCE.md): the run loop recycles a
  fired handle onto a free list when ``sys.getrefcount`` proves the
  engine holds the only reference, so steady-state scheduling allocates
  no handle objects.  Holding on to a returned handle (as timers and
  reliable-delivery retries do) simply keeps it out of the pool — a
  retained handle is never reused under the caller's feet.
* The engine itself never reads wall clocks or RNGs (simlint D002/D008);
  its cost is exposed through the deterministic op counters of
  :mod:`repro.perf.counters` instead.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Optional, Tuple

from ..perf import counters as _opc

__all__ = ["EventHandle", "Simulator", "SimulationError"]

#: free-list bound: enough to absorb any realistic cancelled-entry burst
#: without letting a pathological one pin memory.
_POOL_LIMIT = 4096


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the past or running a
    simulator that has already been stopped and drained.
    """


class EventHandle:
    """A cancellable reference to a scheduled event.

    Attributes
    ----------
    time:
        Simulated time (ms) at which the callback fires.
    seq:
        FIFO tiebreaker assigned by the simulator.
    fn:
        The callback to invoke with ``args`` (``None`` once the event
        has fired or been cancelled).
    args:
        Positional arguments bound at scheduling time.  Stored on the
        handle instead of inside a closure so the hot path allocates no
        lambda per event.
    cancelled:
        ``True`` once :meth:`cancel` has been called; the engine skips
        cancelled events when they reach the head of the queue.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Optional[Callable[..., None]],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        self.cancelled = True
        self.fn = None  # release closure references early
        self.args = ()

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled to fire."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.pending else ("cancelled" if self.cancelled else "fired")
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the simulated clock and an event queue.  Events
    are callables scheduled with pre-bound positional arguments.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._pool: list[EventHandle] = []
        self._running: bool = False
        self._stopped: bool = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries, including not-yet-discarded cancelled ones."""
        return len(self._queue)

    @property
    def pooled_handles(self) -> int:
        """Size of the handle free list (introspection for tests/benchmarks)."""
        return len(self._pool)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        fn:
            Callback to invoke.
        *args:
            Positional arguments bound to the callback now.

        Returns
        -------
        EventHandle
            A handle that can be used to cancel the event.

        Raises
        ------
        SimulationError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Raises
        ------
        SimulationError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, fn, args)
        heapq.heappush(self._queue, (time, seq, handle))
        c = _opc.ACTIVE
        if c is not None:
            c.inc("sim.scheduled")
        return handle

    def _recycle(self, handle: EventHandle) -> None:
        """Return a spent handle to the pool if nothing else references it.

        At the ``getrefcount`` call the engine-owned references are
        exactly three: the run-loop local, this function's parameter and
        ``getrefcount``'s own argument.  A count of 3 therefore proves no
        caller kept the handle, so reusing it can never alias a live
        reference (timers, reliable-delivery retries and tests that
        retain handles keep the count higher and opt out automatically).
        """
        if len(self._pool) < _POOL_LIMIT and sys.getrefcount(handle) == 3:
            handle.fn = None
            handle.args = ()
            self._pool.append(handle)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event is strictly later than
            this time; the clock is advanced to ``until`` on exit so
            repeated ``run(until=...)`` calls form a seamless timeline.
        max_events:
            Safety valve: abort after this many events (useful in tests
            to detect runaway periodic processes).
        """
        self._stopped = False
        self._running = True
        processed = 0
        discarded = 0
        queue = self._queue
        try:
            while queue and not self._stopped:
                time = queue[0][0]
                if until is not None and time > until:
                    break
                _, _, handle = heapq.heappop(queue)
                fn = handle.fn
                if handle.cancelled or fn is None:
                    discarded += 1
                    self._recycle(handle)
                    continue
                self._now = time
                args = handle.args
                handle.fn = None  # mark as fired
                handle.args = ()
                if args:
                    fn(*args)
                else:
                    fn()
                self._recycle(handle)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
            c = _opc.ACTIVE
            if c is not None:
                if processed:
                    c.inc("sim.events", processed)
                if discarded:
                    c.inc("sim.cancelled_discarded", discarded)
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the queue
            was empty (cancelled entries are drained silently).
        """
        while self._queue:
            time, _seq, handle = heapq.heappop(self._queue)
            fn = handle.fn
            if handle.cancelled or fn is None:
                self._recycle(handle)
                continue
            self._now = time
            args = handle.args
            handle.fn = None
            handle.args = ()
            if args:
                fn(*args)
            else:
                fn()
            self._recycle(handle)
            self._events_processed += 1
            c = _opc.ACTIVE
            if c is not None:
                c.inc("sim.events")
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` loop to exit after this event."""
        self._stopped = True
