"""Simulated message-passing network with full accounting.

The paper's evaluation is entirely about *messages*: average per-node
message load (Fig. 6a), the distribution of that load across nodes
(Fig. 6b), per-event message overhead (Fig. 7), and per-message hop
counts (Fig. 8).  Rather than instrumenting application code, every
message in this reproduction passes through :class:`Network.hop`, which
records, per message *kind*:

* a send at the transmitting node and a receive at the destination node
  (for load and load-distribution metrics),
* per-hop counts attributed to the logical message a hop belongs to
  (for hop-count metrics), and
* end-to-end latency when a message is finally *delivered*.

The per-hop latency is a constant — 50 ms by default, matching the MIT
Chord simulator configuration the paper used.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Protocol, Tuple

from ..perf import counters as _opc
from .engine import Simulator
from .faults import DROP_DEAD_DEST, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracing import MessageTracer

__all__ = [
    "Message",
    "MessageStats",
    "Network",
    "ShardPartition",
    "DEFAULT_HOP_DELAY_MS",
]

DEFAULT_HOP_DELAY_MS = 50.0
"""Per-hop routing delay used by the paper's Chord simulator setup."""

_msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """A logical application message travelling over the overlay.

    A single :class:`Message` may take several physical hops (overlay
    routing) and spawn *derived* messages (range-replication forwards).
    ``hops`` accumulates across the whole journey of this logical
    message, including hops inherited from a parent at spawn time, which
    is exactly the quantity Fig. 8 reports for "internal" messages.

    Attributes
    ----------
    kind:
        Accounting category, e.g. ``"mbr"``, ``"query_span"``.
    payload:
        Opaque application data.
    origin:
        Identifier of the node that originated the logical message.
    dest_key:
        The overlay key the message is being routed towards.
    hops:
        Number of physical hops taken so far.
    born:
        Simulated time (ms) the *root* message was created, for latency.
    msg_id:
        Unique id; derived messages get fresh ids but keep ``root_id``.
    root_id:
        Id of the originating message of this message's event, used to
        group overhead accounting per input event.
    tag:
        Free-form routing annotation; range multicast uses it to mark
        the spread direction (``"up"`` / ``"down"``).
    """

    kind: str
    payload: Any
    origin: int
    dest_key: int
    hops: int = 0
    born: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    root_id: int = -1
    tag: str = ""

    def __post_init__(self) -> None:
        if self.root_id < 0:
            self.root_id = self.msg_id

    def derive(
        self, kind: str, *, dest_key: Optional[int] = None, tag: Optional[str] = None
    ) -> "Message":
        """Create a derived message (e.g. a range-replication forward).

        The derived message keeps the payload, origin, birth time, hop
        count and root id so that hop and overhead accounting continue
        to be attributed to the original input event.
        """
        return Message(
            kind=kind,
            payload=self.payload,
            origin=self.origin,
            dest_key=self.dest_key if dest_key is None else dest_key,
            hops=self.hops,
            born=self.born,
            root_id=self.root_id,
            tag=self.tag if tag is None else tag,
        )


class MessageStats:
    """Accumulates message counters for one simulation run.

    The raw counters kept here are deliberately low-level; the
    translation into the paper's figure components lives in
    :mod:`repro.core.metrics`.
    """

    def __init__(self) -> None:
        #: sends per (node, kind)
        self.sends: Counter[Tuple[int, str]] = Counter()
        #: receives per (node, kind)
        self.receives: Counter[Tuple[int, str]] = Counter()
        #: total sends per kind
        self.sends_by_kind: Counter[str] = Counter()
        #: (sum_hops, count) of delivered logical messages per kind.
        #: Plain dicts (get-or-init in ``record_delivery``) rather than
        #: ``defaultdict(lambda: ...)``: a lambda factory cannot be
        #: pickled, and stats objects cross process boundaries in the
        #: parallel sweep runner.
        self.hops_by_kind: Dict[str, list] = {}
        #: (sum_latency_ms, count) of delivered logical messages per kind
        self.latency_by_kind: Dict[str, list] = {}
        #: number of originated input events per kind
        self.originations: Counter[str] = Counter()
        #: messages dropped in flight, per (kind, reason) — loss, outage,
        #: dead destination, …
        self.drops_per_kind: Counter[Tuple[str, str]] = Counter()
        #: injected duplicate copies per kind
        self.duplicates_by_kind: Counter[str] = Counter()
        #: redundant deliveries suppressed by receiver-side dedup, per kind
        self.duplicates_suppressed: Counter[str] = Counter()
        #: retransmissions issued by the reliable-delivery layer, per kind
        self.retransmissions: Counter[str] = Counter()
        #: reliable sends that exhausted their retry budget, per kind
        self.dead_letters: Counter[str] = Counter()
        #: reliable (acknowledged) deliveries attempted, per kind
        self.reliable_sends: Counter[str] = Counter()
        #: reliable deliveries confirmed by an ack, per kind
        self.reliable_acked: Counter[str] = Counter()
        #: reliable sends abandoned because the *sender* died, per kind
        self.reliable_cancelled: Counter[str] = Counter()
        #: delivered payloads no handler recognised, per message kind
        self.unknown_payloads: Counter[str] = Counter()
        #: read-repair pulls issued by quorum aggregators, per kind
        #: (replication only — empty at replication_factor 1)
        self.read_repairs: Counter[str] = Counter()
        #: hinted handoffs queued for a dead owner's arc, per kind
        self.handoffs_enqueued: Counter[str] = Counter()
        #: hinted handoffs dispatched to the arc's new owner, per kind
        self.handoffs_drained: Counter[str] = Counter()
        #: MBR publishes shed by admission control, per delivery kind
        #: (load-balancing only — empty unless admission_control is on)
        self.publishes_shed: Counter[str] = Counter()
        #: backpressure advisories emitted by overloaded holders, per kind
        self.backpressure_signals: Counter[str] = Counter()
        #: source publishes deferred by throttling, per kind
        self.source_throttles: Counter[str] = Counter()
        #: stored MBRs migrated to new-epoch owners after a mapping
        #: refit, per kind (empty unless adaptive_mapping is on)
        self.mbrs_migrated: Counter[str] = Counter()
        #: messages already in flight when this ledger was installed
        #: (their receives/drops land here without a matching send);
        #: set by ``StreamIndexSystem.reset_stats`` so the conservation
        #: equation balances across a counter reset
        self.in_flight_at_reset: int = 0

    # -- recording -----------------------------------------------------
    def record_send(self, node: int, kind: str) -> None:
        """Record one physical message transmission by ``node``."""
        self.sends[(node, kind)] += 1
        self.sends_by_kind[kind] += 1

    def record_receive(self, node: int, kind: str) -> None:
        """Record one physical message reception at ``node``."""
        self.receives[(node, kind)] += 1

    def record_origination(self, kind: str) -> None:
        """Record the creation of a new input event (MBR/query/response)."""
        self.originations[kind] += 1

    def record_drop(self, kind: str, reason: str) -> None:
        """Record a message lost in flight (and why)."""
        self.drops_per_kind[(kind, reason)] += 1

    def record_duplicate(self, kind: str) -> None:
        """Record an injected duplicate copy."""
        self.duplicates_by_kind[kind] += 1

    def record_duplicate_suppressed(self, kind: str) -> None:
        """Record a redundant delivery discarded by receiver-side dedup."""
        self.duplicates_suppressed[kind] += 1

    def record_retransmission(self, kind: str) -> None:
        """Record one retry of an unacknowledged reliable send."""
        self.retransmissions[kind] += 1

    def record_dead_letter(self, kind: str) -> None:
        """Record a reliable send abandoned after its retry budget."""
        self.dead_letters[kind] += 1

    def record_reliable_send(self, kind: str) -> None:
        """Record an acknowledged-delivery attempt (one per unique payload)."""
        self.reliable_sends[kind] += 1

    def record_reliable_ack(self, kind: str) -> None:
        """Record an acknowledged-delivery confirmation."""
        self.reliable_acked[kind] += 1

    def record_reliable_cancelled(self, kind: str) -> None:
        """Record a reliable send dropped because its sender crashed."""
        self.reliable_cancelled[kind] += 1

    def record_unknown_payload(self, kind: str) -> None:
        """Record a delivered payload that no handler recognised."""
        self.unknown_payloads[kind] += 1

    def record_read_repair(self, kind: str) -> None:
        """Record a read-repair pull issued by a quorum aggregator."""
        self.read_repairs[kind] += 1

    def record_handoff_enqueued(self, kind: str) -> None:
        """Record a replica copy queued for hinted handoff."""
        self.handoffs_enqueued[kind] += 1

    def record_handoff_drained(self, kind: str) -> None:
        """Record a hinted handoff dispatched to a new owner."""
        self.handoffs_drained[kind] += 1

    def record_publish_shed(self, kind: str) -> None:
        """Record an MBR publish shed by admission control."""
        self.publishes_shed[kind] += 1

    def record_backpressure(self, kind: str) -> None:
        """Record a backpressure advisory emitted to a source."""
        self.backpressure_signals[kind] += 1

    def record_source_throttle(self, kind: str) -> None:
        """Record a publish deferred by a throttled source."""
        self.source_throttles[kind] += 1

    def record_mbr_migrated(self, kind: str) -> None:
        """Record a stored MBR migrated after a mapping refit."""
        self.mbrs_migrated[kind] += 1

    def record_delivery(self, msg: Message, now: float) -> None:
        """Record final delivery of a logical message (hops & latency)."""
        kind = msg.kind
        acc = self.hops_by_kind.get(kind)
        if acc is None:
            acc = self.hops_by_kind[kind] = [0, 0]
        acc[0] += msg.hops
        acc[1] += 1
        lat = self.latency_by_kind.get(kind)
        if lat is None:
            lat = self.latency_by_kind[kind] = [0.0, 0]
        lat[0] += now - msg.born
        lat[1] += 1

    # -- snapshot / merge ----------------------------------------------
    #: counters keyed by a (a, b) pair tuple — serialized as [a, b, v].
    _PAIR_COUNTERS = ("sends", "receives", "drops_per_kind")
    #: counters keyed by a plain kind string — serialized as [kind, v].
    _KIND_COUNTERS = (
        "sends_by_kind",
        "originations",
        "duplicates_by_kind",
        "duplicates_suppressed",
        "retransmissions",
        "dead_letters",
        "reliable_sends",
        "reliable_acked",
        "reliable_cancelled",
        "unknown_payloads",
        "read_repairs",
        "handoffs_enqueued",
        "handoffs_drained",
        "publishes_shed",
        "backpressure_signals",
        "source_throttles",
        "mbrs_migrated",
    )
    #: (sum, count) accumulator tables — serialized as [kind, sum, count].
    _ACC_TABLES = ("hops_by_kind", "latency_by_kind")
    #: plain scalar fields.
    _SCALARS = ("in_flight_at_reset",)

    SNAPSHOT_VERSION = 1

    def to_snapshot(self) -> Dict[str, Any]:
        """A JSON-safe, deterministic dump of every counter.

        The inverse of :meth:`from_snapshot`.  Tuple counter keys become
        sorted ``[key..., value]`` rows (JSON has no tuple keys), floats
        survive a ``json`` round trip exactly (repr serialization of
        binary64), and rows are sorted so two equal ledgers always
        produce byte-identical serialized snapshots.  This is how worker
        processes of the parallel sweep runner return their accounting.
        """
        snap: Dict[str, Any] = {"version": self.SNAPSHOT_VERSION}
        for name in self._PAIR_COUNTERS:
            counter = getattr(self, name)
            snap[name] = sorted([a, b, v] for (a, b), v in counter.items())
        for name in self._KIND_COUNTERS:
            counter = getattr(self, name)
            snap[name] = sorted([k, v] for k, v in counter.items())
        for name in self._ACC_TABLES:
            table = getattr(self, name)
            snap[name] = sorted([k, acc[0], acc[1]] for k, acc in table.items())
        for name in self._SCALARS:
            snap[name] = getattr(self, name)
        return snap

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "MessageStats":
        """Rebuild a :class:`MessageStats` from :meth:`to_snapshot` output."""
        version = snap.get("version")
        if version != cls.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported MessageStats snapshot version {version!r} "
                f"(expected {cls.SNAPSHOT_VERSION})"
            )
        stats = cls()
        for name in cls._PAIR_COUNTERS:
            counter = getattr(stats, name)
            for a, b, v in snap.get(name, ()):
                counter[(a, b)] = v
        for name in cls._KIND_COUNTERS:
            counter = getattr(stats, name)
            for k, v in snap.get(name, ()):
                counter[k] = v
        for name in cls._ACC_TABLES:
            table = getattr(stats, name)
            for k, total, count in snap.get(name, ()):
                table[k] = [total, count]
        for name in cls._SCALARS:
            setattr(stats, name, snap.get(name, 0))
        return stats

    def merge(self, other: "MessageStats") -> "MessageStats":
        """Accumulate ``other``'s counters into this ledger (in place).

        Pure element-wise addition, so merging is order-independent for
        every integer counter; the float latency sums are added in the
        caller's iteration order (the sweep runner merges cells in spec
        order, keeping merged output deterministic).  Returns ``self``
        for chaining.
        """
        for name in self._PAIR_COUNTERS + self._KIND_COUNTERS:
            mine = getattr(self, name)
            for key, v in getattr(other, name).items():
                mine[key] += v
        for name in self._ACC_TABLES:
            mine = getattr(self, name)
            for key, acc in getattr(other, name).items():
                tgt = mine.get(key)
                if tgt is None:
                    mine[key] = [acc[0], acc[1]]
                else:
                    tgt[0] += acc[0]
                    tgt[1] += acc[1]
        for name in self._SCALARS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    # -- queries -------------------------------------------------------
    def mean_hops(self, kind: str) -> float:
        """Average hop count of delivered messages of ``kind`` (0 if none)."""
        total, count = self.hops_by_kind.get(kind, (0, 0))
        return total / count if count else 0.0

    def mean_latency(self, kind: str) -> float:
        """Average end-to-end latency (ms) of delivered ``kind`` messages."""
        total, count = self.latency_by_kind.get(kind, (0.0, 0))
        return total / count if count else 0.0

    def node_load(self, node: int) -> int:
        """Total messages sent plus received by ``node``."""
        s = sum(v for (n, _k), v in self.sends.items() if n == node)
        r = sum(v for (n, _k), v in self.receives.items() if n == node)
        return s + r

    def load_by_node(self) -> Dict[int, int]:
        """Sends+receives per node, for the Fig. 6(b) distribution."""
        load: Dict[int, int] = defaultdict(int)
        for (n, _k), v in self.sends.items():
            load[n] += v
        for (n, _k), v in self.receives.items():
            load[n] += v
        return dict(load)

    def sends_per_kind_node_mean(self, n_nodes: int) -> Dict[str, float]:
        """Average number of sends per node, broken down by kind."""
        return {k: v / n_nodes for k, v in self.sends_by_kind.items()}

    def total_drops(self) -> int:
        """Messages lost in flight, all kinds and reasons combined."""
        return sum(self.drops_per_kind.values())

    def drops_by_reason(self) -> Dict[str, int]:
        """Drop totals aggregated over kinds, keyed by reason."""
        out: Dict[str, int] = defaultdict(int)
        for (_kind, reason), v in self.drops_per_kind.items():
            out[reason] += v
        return dict(out)

    def delivery_ratio(self, kind: Optional[str] = None) -> float:
        """Fraction of reliable sends confirmed by an ack (1.0 if none).

        With ``kind`` given, the ratio for that kind only; otherwise the
        overall ratio across every reliably-sent kind.
        """
        if kind is not None:
            attempted = self.reliable_sends.get(kind, 0)
            return self.reliable_acked.get(kind, 0) / attempted if attempted else 1.0
        attempted = sum(self.reliable_sends.values())
        return sum(self.reliable_acked.values()) / attempted if attempted else 1.0

    def eventual_delivery_ratio(self, in_flight: int = 0) -> float:
        """Acked fraction of reliable sends whose outcome is *settled*.

        The instantaneous :meth:`delivery_ratio` undercounts on a live
        system: sends still inside their retry schedule at measurement
        cutoff, and sends whose originating node crashed (nobody is left
        waiting for the answer), are unsettled rather than failed.  This
        view excludes both — pass the number of still-pending sends as
        ``in_flight`` (see ``StreamIndexSystem.pending_reliable``) — so
        the complement is exactly the dead-letter rate.
        """
        attempted = (
            sum(self.reliable_sends.values())
            - sum(self.reliable_cancelled.values())
            - in_flight
        )
        acked = sum(self.reliable_acked.values())
        return acked / attempted if attempted > 0 else 1.0


class ShardPartition(Protocol):
    """Boundary between a shard-local scheduler and the rest of the ring.

    When a :class:`Network` has a partition installed, hops whose
    destination lives on another shard are *exported* instead of being
    scheduled locally: the partition buffers the fully-computed arrival
    (absolute deliver time, destination, continuation) and the shard
    coordinator replays it on the owning shard at the next time barrier,
    in a total order that reproduces the serial run exactly (see
    :mod:`repro.perf.shards`).  The sender-side ``in_flight`` increment
    is kept by the exporting shard; the importing shard runs
    ``Network._arrive`` which performs the matching decrement, so the
    conservation equation holds over the *sum* of shard gauges.
    """

    def is_local(self, node_id: int) -> bool:
        """Whether ``node_id`` is simulated by this shard."""
        ...

    def export(
        self,
        deliver_time: float,
        dst: int,
        on_arrival: Callable[..., None],
        cb_args: Tuple[Any, ...],
        msg: Message,
    ) -> None:
        """Buffer a cross-shard arrival for replay at the next barrier."""
        ...


class Network:
    """Point-to-point message fabric with per-hop delay and faults.

    The network knows nothing about Chord: routing decisions are made by
    the overlay layer, which calls :meth:`hop` once per physical hop.
    Without an ``injector`` every hop takes the constant
    ``hop_delay_ms`` and arrives exactly once — the seed (and paper)
    behaviour.  With a :class:`~repro.sim.faults.FaultInjector`
    attached, each hop may be dropped, jittered, or duplicated according
    to the injector's :class:`~repro.sim.faults.FaultPlan`, with every
    injected event accounted in :class:`MessageStats`.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        hop_delay_ms: float = DEFAULT_HOP_DELAY_MS,
        stats: Optional[MessageStats] = None,
        tracer: Optional["MessageTracer"] = None,
        injector: Optional[FaultInjector] = None,
        liveness: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.sim = sim
        self.hop_delay_ms = float(hop_delay_ms)
        self.stats = stats if stats is not None else MessageStats()
        #: optional :class:`repro.sim.tracing.MessageTracer`; may also be
        #: attached after construction
        self.tracer = tracer
        #: optional fault injector consulted on every hop
        self.injector = injector
        #: optional ``node_id -> alive?`` oracle; when set, messages
        #: arriving at a node that died while they were in flight are
        #: dropped (and counted) instead of invoking its handlers
        self.liveness = liveness
        #: physical copies currently travelling (scheduled but not yet
        #: arrived); with ``stats.in_flight_at_reset`` this closes the
        #: conservation equation checked by
        #: :func:`repro.analysis.invariants.check_message_conservation`
        self.in_flight = 0
        #: optional shard boundary (see :class:`ShardPartition`); when
        #: set, hops to nodes owned by another shard are exported to the
        #: coordinator instead of being scheduled on the local engine
        self.partition: Optional[ShardPartition] = None

    def hop(
        self,
        src: int,
        dst: int,
        msg: Message,
        on_arrival: Callable[..., None],
        *cb_args: Any,
    ) -> None:
        """Transmit ``msg`` one physical hop from ``src`` to ``dst``.

        Accounting: a send at ``src`` and (on arrival) a receive at
        ``dst`` are recorded under ``msg.kind``; ``msg.hops`` is
        incremented.  ``on_arrival(*cb_args, msg)`` runs at the
        destination after the hop delay — unless the fault injector
        drops the hop or the destination died in flight, in which case
        the loss is recorded under ``drops_per_kind`` and the handler
        never runs.  An injected duplicate schedules a second,
        independently delayed arrival carrying a field-identical copy of
        the message.

        ``cb_args`` lets hot callers pass a bound method plus its
        leading arguments instead of allocating a per-hop closure (the
        overlay's routing step is the main user; see PERFORMANCE.md).
        """
        self.stats.record_send(src, msg.kind)
        if self.tracer is not None:
            self.tracer.record_send(self.sim.now, src, dst, msg)
        msg.hops += 1
        c = _opc.ACTIVE
        if c is not None:
            c.inc("net.hops")

        if self.injector is not None:
            verdict = self.injector.judge(src, dst, msg.kind, self.sim.now)
            if verdict.dropped:
                self.stats.record_drop(msg.kind, verdict.drop_reason)
                if c is not None:
                    c.inc("net.drops")
                return
            delay = verdict.delay_ms
            dup_delay = verdict.duplicate_delay_ms
        else:
            delay = self.hop_delay_ms
            dup_delay = None

        part = self.partition
        if part is not None and not part.is_local(dst):
            self.in_flight += 1
            part.export(self.sim.now + delay, dst, on_arrival, cb_args, msg)
            if dup_delay is not None:
                self.stats.record_duplicate(msg.kind)
                if c is not None:
                    c.inc("net.duplicates")
                self.in_flight += 1
                part.export(
                    self.sim.now + dup_delay, dst, on_arrival, cb_args, replace(msg)
                )
            return

        self.in_flight += 1
        self.sim.schedule(delay, self._arrive, dst, on_arrival, cb_args, msg)
        if dup_delay is not None:
            # The copy keeps msg_id/root_id (it *is* the same logical
            # message) but routes independently from here on.
            self.stats.record_duplicate(msg.kind)
            if c is not None:
                c.inc("net.duplicates")
            self.in_flight += 1
            self.sim.schedule(
                dup_delay, self._arrive, dst, on_arrival, cb_args, replace(msg)
            )

    def _arrive(
        self,
        dst: int,
        on_arrival: Callable[..., None],
        cb_args: Tuple[Any, ...],
        m: Message,
    ) -> None:
        """Complete one physical hop at ``dst`` (scheduled by :meth:`hop`).

        A bound method with pre-bound arguments instead of a per-hop
        closure: the handle-pooled engine stores the argument tuple, so
        steady-state hops allocate no function objects.
        """
        self.in_flight -= 1
        if self.liveness is not None and not self.liveness(dst):
            self.stats.record_drop(m.kind, DROP_DEAD_DEST)
            return
        self.stats.record_receive(dst, m.kind)
        if cb_args:
            on_arrival(*cb_args, m)
        else:
            on_arrival(m)

    def record_delivery(self, node: int, msg: Message) -> None:
        """Record final delivery of a logical message (stats + trace)."""
        self.stats.record_delivery(msg, self.sim.now)
        if self.tracer is not None:
            self.tracer.record_deliver(self.sim.now, node, msg)

    def local(self, node: int, msg: Message, on_arrival: Callable[[Message], None]) -> None:
        """Deliver ``msg`` to ``node`` itself without a network hop.

        Used when the routing source already covers the destination key:
        no message is sent, nothing enters the figure statistics, the
        callback runs immediately (still via the scheduler, for ordering
        determinism).
        """
        c = _opc.ACTIVE
        if c is not None:
            c.inc("net.local")
        self.sim.schedule(0.0, on_arrival, msg)
