"""Simulated message-passing network with full accounting.

The paper's evaluation is entirely about *messages*: average per-node
message load (Fig. 6a), the distribution of that load across nodes
(Fig. 6b), per-event message overhead (Fig. 7), and per-message hop
counts (Fig. 8).  Rather than instrumenting application code, every
message in this reproduction passes through :class:`Network.hop`, which
records, per message *kind*:

* a send at the transmitting node and a receive at the destination node
  (for load and load-distribution metrics),
* per-hop counts attributed to the logical message a hop belongs to
  (for hop-count metrics), and
* end-to-end latency when a message is finally *delivered*.

The per-hop latency is a constant — 50 ms by default, matching the MIT
Chord simulator configuration the paper used.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from .engine import Simulator

__all__ = ["Message", "MessageStats", "Network", "DEFAULT_HOP_DELAY_MS"]

DEFAULT_HOP_DELAY_MS = 50.0
"""Per-hop routing delay used by the paper's Chord simulator setup."""

_msg_ids = itertools.count()


@dataclass
class Message:
    """A logical application message travelling over the overlay.

    A single :class:`Message` may take several physical hops (overlay
    routing) and spawn *derived* messages (range-replication forwards).
    ``hops`` accumulates across the whole journey of this logical
    message, including hops inherited from a parent at spawn time, which
    is exactly the quantity Fig. 8 reports for "internal" messages.

    Attributes
    ----------
    kind:
        Accounting category, e.g. ``"mbr"``, ``"query_span"``.
    payload:
        Opaque application data.
    origin:
        Identifier of the node that originated the logical message.
    dest_key:
        The overlay key the message is being routed towards.
    hops:
        Number of physical hops taken so far.
    born:
        Simulated time (ms) the *root* message was created, for latency.
    msg_id:
        Unique id; derived messages get fresh ids but keep ``root_id``.
    root_id:
        Id of the originating message of this message's event, used to
        group overhead accounting per input event.
    tag:
        Free-form routing annotation; range multicast uses it to mark
        the spread direction (``"up"`` / ``"down"``).
    """

    kind: str
    payload: Any
    origin: int
    dest_key: int
    hops: int = 0
    born: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    root_id: int = -1
    tag: str = ""

    def __post_init__(self) -> None:
        if self.root_id < 0:
            self.root_id = self.msg_id

    def derive(
        self, kind: str, *, dest_key: Optional[int] = None, tag: Optional[str] = None
    ) -> "Message":
        """Create a derived message (e.g. a range-replication forward).

        The derived message keeps the payload, origin, birth time, hop
        count and root id so that hop and overhead accounting continue
        to be attributed to the original input event.
        """
        return Message(
            kind=kind,
            payload=self.payload,
            origin=self.origin,
            dest_key=self.dest_key if dest_key is None else dest_key,
            hops=self.hops,
            born=self.born,
            root_id=self.root_id,
            tag=self.tag if tag is None else tag,
        )


class MessageStats:
    """Accumulates message counters for one simulation run.

    The raw counters kept here are deliberately low-level; the
    translation into the paper's figure components lives in
    :mod:`repro.core.metrics`.
    """

    def __init__(self) -> None:
        #: sends per (node, kind)
        self.sends: Counter[Tuple[int, str]] = Counter()
        #: receives per (node, kind)
        self.receives: Counter[Tuple[int, str]] = Counter()
        #: total sends per kind
        self.sends_by_kind: Counter[str] = Counter()
        #: (sum_hops, count) of delivered logical messages per kind
        self.hops_by_kind: Dict[str, list] = defaultdict(lambda: [0, 0])
        #: (sum_latency_ms, count) of delivered logical messages per kind
        self.latency_by_kind: Dict[str, list] = defaultdict(lambda: [0.0, 0])
        #: number of originated input events per kind
        self.originations: Counter[str] = Counter()

    # -- recording -----------------------------------------------------
    def record_send(self, node: int, kind: str) -> None:
        """Record one physical message transmission by ``node``."""
        self.sends[(node, kind)] += 1
        self.sends_by_kind[kind] += 1

    def record_receive(self, node: int, kind: str) -> None:
        """Record one physical message reception at ``node``."""
        self.receives[(node, kind)] += 1

    def record_origination(self, kind: str) -> None:
        """Record the creation of a new input event (MBR/query/response)."""
        self.originations[kind] += 1

    def record_delivery(self, msg: Message, now: float) -> None:
        """Record final delivery of a logical message (hops & latency)."""
        acc = self.hops_by_kind[msg.kind]
        acc[0] += msg.hops
        acc[1] += 1
        lat = self.latency_by_kind[msg.kind]
        lat[0] += now - msg.born
        lat[1] += 1

    # -- queries -------------------------------------------------------
    def mean_hops(self, kind: str) -> float:
        """Average hop count of delivered messages of ``kind`` (0 if none)."""
        total, count = self.hops_by_kind.get(kind, (0, 0))
        return total / count if count else 0.0

    def mean_latency(self, kind: str) -> float:
        """Average end-to-end latency (ms) of delivered ``kind`` messages."""
        total, count = self.latency_by_kind.get(kind, (0.0, 0))
        return total / count if count else 0.0

    def node_load(self, node: int) -> int:
        """Total messages sent plus received by ``node``."""
        s = sum(v for (n, _k), v in self.sends.items() if n == node)
        r = sum(v for (n, _k), v in self.receives.items() if n == node)
        return s + r

    def load_by_node(self) -> Dict[int, int]:
        """Sends+receives per node, for the Fig. 6(b) distribution."""
        load: Dict[int, int] = defaultdict(int)
        for (n, _k), v in self.sends.items():
            load[n] += v
        for (n, _k), v in self.receives.items():
            load[n] += v
        return dict(load)

    def sends_per_kind_node_mean(self, n_nodes: int) -> Dict[str, float]:
        """Average number of sends per node, broken down by kind."""
        return {k: v / n_nodes for k, v in self.sends_by_kind.items()}


class Network:
    """Point-to-point message fabric with a constant per-hop delay.

    The network knows nothing about Chord: routing decisions are made by
    the overlay layer, which calls :meth:`hop` once per physical hop.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        hop_delay_ms: float = DEFAULT_HOP_DELAY_MS,
        stats: Optional[MessageStats] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.hop_delay_ms = float(hop_delay_ms)
        self.stats = stats if stats is not None else MessageStats()
        #: optional :class:`repro.sim.tracing.MessageTracer`; may also be
        #: attached after construction
        self.tracer = tracer

    def hop(
        self,
        src: int,
        dst: int,
        msg: Message,
        on_arrival: Callable[[Message], None],
    ) -> None:
        """Transmit ``msg`` one physical hop from ``src`` to ``dst``.

        Accounting: a send at ``src`` and (on arrival) a receive at
        ``dst`` are recorded under ``msg.kind``; ``msg.hops`` is
        incremented.  ``on_arrival(msg)`` runs at the destination after
        the hop delay.
        """
        self.stats.record_send(src, msg.kind)
        if self.tracer is not None:
            self.tracer.record_send(self.sim.now, src, dst, msg)
        msg.hops += 1

        def _arrive() -> None:
            self.stats.record_receive(dst, msg.kind)
            on_arrival(msg)

        self.sim.schedule(self.hop_delay_ms, _arrive)

    def record_delivery(self, node: int, msg: Message) -> None:
        """Record final delivery of a logical message (stats + trace)."""
        self.stats.record_delivery(msg, self.sim.now)
        if self.tracer is not None:
            self.tracer.record_deliver(self.sim.now, node, msg)

    def local(self, node: int, msg: Message, on_arrival: Callable[[Message], None]) -> None:
        """Deliver ``msg`` to ``node`` itself without a network hop.

        Used when the routing source already covers the destination key:
        no message is sent, nothing is counted, the callback runs
        immediately (still via the scheduler, for ordering determinism).
        """
        self.sim.schedule(0.0, lambda: on_arrival(msg))
