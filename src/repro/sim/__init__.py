"""Discrete-event simulation substrate.

This package replaces the MIT Chord simulator the paper linked against:
a deterministic event engine (:mod:`repro.sim.engine`), periodic process
helpers (:mod:`repro.sim.process`), a message network with a constant
per-hop latency and complete message accounting
(:mod:`repro.sim.network`), and named deterministic RNG substreams
(:mod:`repro.sim.rng`).
"""

from .engine import EventHandle, SimulationError, Simulator
from .faults import (
    ConstantDelay,
    DelayModel,
    FaultInjector,
    FaultPlan,
    HeavyTailDelay,
    JitteredDelay,
    LinkOutage,
)
from .network import DEFAULT_HOP_DELAY_MS, Message, MessageStats, Network
from .process import PeriodicProcess, Timer
from .rng import RngRegistry

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Message",
    "MessageStats",
    "Network",
    "DEFAULT_HOP_DELAY_MS",
    "PeriodicProcess",
    "Timer",
    "RngRegistry",
    "DelayModel",
    "ConstantDelay",
    "JitteredDelay",
    "HeavyTailDelay",
    "LinkOutage",
    "FaultPlan",
    "FaultInjector",
]

from .tracing import MessageTracer, TraceEvent  # noqa: E402

__all__ += ["MessageTracer", "TraceEvent"]
