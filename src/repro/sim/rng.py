"""Deterministic random-number management.

Every stochastic component of the reproduction (stream generators, query
arrival process, query content, node identifiers, churn schedules) draws
from an *independent, named* substream derived from a single root seed
via :class:`numpy.random.SeedSequence`.  This gives two properties the
experiments rely on:

* **Reproducibility** — a run is a pure function of (config, seed).
* **Variance isolation** — changing e.g. the number of nodes does not
  perturb the random stream used for query generation, so parameter
  sweeps compare like with like.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A registry of named, independently seeded numpy generators.

    Examples
    --------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.get("streams")
    >>> b = rngs.get("queries")
    >>> a is rngs.get("streams")
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The substream seed is derived from ``(root_seed, hash(name))``
        through ``SeedSequence.spawn``-style keying, so distinct names
        yield statistically independent streams and the same name always
        yields the same stream for a given root seed.
        """
        gen = self._cache.get(name)
        if gen is None:
            # Stable, platform-independent key for the name.
            key = [ord(c) for c in name]
            ss = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(key))
            gen = np.random.default_rng(ss)
            self._cache[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed child generator, e.g. one per stream source.

        ``fork("stream", 3)`` is equivalent to ``get("stream/3")`` but
        avoids string formatting in hot paths.
        """
        return self.get(f"{name}/{index}")
