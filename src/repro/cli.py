"""Command-line interface: run demos and regenerate paper experiments.

Usage (also via ``python -m repro``)::

    python -m repro table1
    python -m repro demo --nodes 20 --radius 0.2 --duration 15
    python -m repro load --nodes 50 100 --measure 10
    python -m repro overhead --nodes 50 100 --radius 0.2
    python -m repro hops --nodes 50 100
    python -m repro distribution --nodes 100
    python -m repro baselines --nodes 50
    python -m repro lossy --nodes 50 --loss 0.05 --churn 0.1 --duration 20
    python -m repro bench --quick
    python -m repro shard --jobs 4 --check
    python -m repro lint src
    python -m repro protocol [--json]
    python -m repro node --listen 127.0.0.1:7000 [--join HOST:PORT]
    python -m repro client --connect 127.0.0.1:7000 status

The experiment subcommands mirror the benchmark suite
(``pytest benchmarks/ --benchmark-only``) but let you pick node counts
and measurement lengths interactively.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .bench.harness import SweepCache
from .bench.report import format_histogram, format_series, format_table
from .core.config import TABLE_I, MiddlewareConfig, WorkloadConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed data-stream indexing over content-based "
        "routing (IPDPS 2005 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the paper's Table I parameters")

    demo = sub.add_parser("demo", help="run a small end-to-end demo")
    demo.add_argument("--nodes", type=int, default=20)
    demo.add_argument("--radius", type=float, default=0.2)
    demo.add_argument("--duration", type=float, default=15.0, help="seconds")
    demo.add_argument("--seed", type=int, default=7)

    for name, helptext in (
        ("load", "Fig. 6(a): per-node message load components"),
        ("overhead", "Fig. 7: message overhead per input event"),
        ("hops", "Fig. 8: hops per message type"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--nodes", type=int, nargs="+", default=[50, 100])
        p.add_argument("--radius", type=float, default=0.1)
        p.add_argument("--measure", type=float, default=10.0, help="seconds")
        p.add_argument("--batch", type=int, default=1, help="MBR batch size w")
        p.add_argument("--seed", type=int, default=0)

    dist = sub.add_parser(
        "distribution", help="Fig. 6(b): load distribution across nodes"
    )
    dist.add_argument("--nodes", type=int, default=100)
    dist.add_argument("--measure", type=float, default=10.0)
    dist.add_argument("--batch", type=int, default=1)
    dist.add_argument("--seed", type=int, default=0)

    base = sub.add_parser(
        "baselines", help="Sec. IV-A: compare against centralized & flooding"
    )
    base.add_argument("--nodes", type=int, default=50)
    base.add_argument("--measure", type=float, default=10.0)
    base.add_argument("--seed", type=int, default=0)

    lossy = sub.add_parser(
        "lossy",
        help="lossy-network scenario: ack/retry delivery and soft-state "
        "refresh under message loss, duplication and churn",
    )
    lossy.add_argument("--nodes", type=int, default=50)
    lossy.add_argument("--loss", type=float, default=0.05, help="per-hop loss rate")
    lossy.add_argument(
        "--duplicate", type=float, default=0.01, help="per-hop duplication rate"
    )
    lossy.add_argument(
        "--churn", type=float, default=0.1, help="fail AND join events/s (0 disables)"
    )
    lossy.add_argument("--radius", type=float, default=0.3)
    lossy.add_argument("--duration", type=float, default=20.0, help="seconds")
    lossy.add_argument(
        "--refresh", type=float, default=2.0,
        help="soft-state refresh period in seconds (0 disables healing)",
    )
    lossy.add_argument("--seed", type=int, default=7)
    lossy.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="replicas per stored MBR, counting the primary "
        "(1 disables replication; DESIGN.md §10)",
    )
    lossy.add_argument(
        "--consistency", choices=("eventual", "quorum"), default="eventual",
        help="query read mode: first answer wins, or wait for "
        "ceil((R+1)/2) agreeing replicas with read repair",
    )
    lossy.add_argument(
        "--vnodes", type=int, default=1, metavar="V",
        help="ring tokens (virtual nodes) per physical data center "
        "(1 disables; DESIGN.md §13)",
    )
    lossy.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive quantile remapping: refit the key map to observed "
        "key density on stabilization rounds and migrate stale MBRs",
    )
    lossy.add_argument(
        "--shed", type=float, default=0.0, metavar="RATE",
        help="admission control: per-holder token-bucket publish budget "
        "in MBRs/s (0 disables; sheds answer with LoadShed/Backpressure)",
    )
    lossy.add_argument(
        "--check-invariants",
        action="store_true",
        help="after the run, stabilize the ring and verify the ring / "
        "index-placement / message-conservation invariants "
        "(exit 1 on violation)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the perf suite and write a schema-versioned "
        "BENCH_perf.json (see PERFORMANCE.md)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller scenario sizes (CI smoke profile)",
    )
    bench.add_argument(
        "--only",
        nargs="+",
        metavar="SCENARIO",
        help="run only the named scenario(s)",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="report path (default: BENCH_perf.json in the cwd)",
    )
    bench.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare events/s against a baseline report; exit 1 on "
        "regression beyond --max-regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional events/s drop vs --check (default 0.25)",
    )
    bench.add_argument(
        "--speedup-ref",
        default=None,
        help="pre-optimization reference report used to annotate "
        "speedups (default: benchmarks/perf_prepr.json if present)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan scenarios out across N worker processes (each measured "
        "in its own process; default 1 = in-process serial)",
    )

    shard = sub.add_parser(
        "shard",
        help="run one scenario sharded across worker processes with a "
        "deterministic barrier merge; --check verifies the merged "
        "stats CSV is byte-identical to a serial run",
    )
    shard.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="ring shards / worker processes (default 2)",
    )
    shard.add_argument(
        "--scenario",
        nargs="+",
        metavar="NAME",
        default=None,
        help="scenario(s) to run (default: all; see repro.perf.shards)",
    )
    shard.add_argument(
        "--quick",
        action="store_true",
        help="shorter measurement interval (CI smoke profile)",
    )
    shard.add_argument(
        "--output",
        default=None,
        help="write a JSON report of digests to this path",
    )
    shard.add_argument(
        "--check",
        action="store_true",
        help="re-run serially and verify byte-identical stats "
        "(exit 1 on mismatch)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run the full experiment sweep (Fig. 6-8 + churn/loss) "
        "across worker processes and write SWEEP_results.json; "
        "the document is byte-identical for any --jobs value",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan sweep cells across (default 1)",
    )
    sweep.add_argument(
        "--quick",
        action="store_true",
        help="smaller node counts and windows (CI smoke profile)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="base RNG seed")
    sweep.add_argument(
        "--output",
        default=None,
        help="result path (default: SWEEP_results.json in the cwd)",
    )
    sweep.add_argument(
        "--check",
        action="store_true",
        help="re-run serially and verify the parallel document is "
        "byte-identical (exit 1 on mismatch)",
    )

    lint = sub.add_parser(
        "lint",
        help="simlint: static determinism & protocol checks (DESIGN.md §7)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    lint.add_argument(
        "--baseline",
        default="simlint-baseline.txt",
        help="baseline file of grandfathered findings",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="fail if the baseline lists findings no longer emitted "
        "(baseline hygiene; combine with --write to rewrite it)",
    )
    lint.add_argument(
        "--write",
        action="store_true",
        help="with --prune-baseline: rewrite the baseline keeping only "
        "still-emitted findings",
    )

    proto = sub.add_parser(
        "protocol",
        help="print the message-kind x role-handler table from the live "
        "protocol registry (DESIGN.md §8)",
    )
    proto.add_argument(
        "--json",
        action="store_true",
        help="machine-readable registry dump (kind, fields, dedup/ack/"
        "sender metadata) — the wire-schema pin for net/wire.py",
    )

    flow = sub.add_parser(
        "flow",
        help="simflow: whole-program protocol-flow analysis — the "
        "role×kind send/handle/ack graph and the F001-F005 checks "
        "(DESIGN.md §11)",
    )
    flow.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="source roots to analyze (default: src)",
    )
    flow.add_argument(
        "--baseline",
        default="flow-baseline.txt",
        help="baseline file of grandfathered flow findings",
    )
    flow.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    flow.add_argument(
        "--dot",
        metavar="FILE",
        help="also write the message-flow graph in Graphviz DOT form",
    )
    flow.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on findings not covered by the baseline",
    )

    rs = sub.add_parser("ring-stats", help="Chord ring diagnostics")
    rs.add_argument("--nodes", type=int, default=100)
    rs.add_argument("--m", type=int, default=32)
    rs.add_argument("--samples", type=int, default=500)

    node = sub.add_parser(
        "node",
        help="run one data center as a real OS process: the full role "
        "stack over asyncio TCP framing (DESIGN.md §12)",
    )
    node.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="address to bind (port 0 picks an ephemeral port)",
    )
    node.add_argument(
        "--join", default=None, metavar="HOST:PORT",
        help="existing cluster member to join via",
    )
    node.add_argument(
        "--name", default=None,
        help="node name hashed onto the ring (default: dc-<port>); use "
        "dc-0..dc-N to mirror a sim reference deployment",
    )
    node.add_argument("--m", type=int, default=32, help="ring identifier bits")
    node.add_argument("--window", type=int, default=16, help="DFT window size")
    node.add_argument("--batch", type=int, default=2, help="MBR batch size w")
    node.add_argument("--k", type=int, default=2, help="feature coefficients")
    node.add_argument(
        "--nper", type=float, default=500.0, help="notification period (ms)"
    )
    node.add_argument("--seed", type=int, default=0, help="RNG seed (retry jitter)")

    client = sub.add_parser(
        "client",
        help="drive a running `repro node` cluster: publish values, post "
        "similarity queries, fetch results and status",
    )
    client.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="any cluster member's listen address",
    )
    client.add_argument(
        "--timeout", type=float, default=10.0, help="RPC timeout (seconds)"
    )
    csub = client.add_subparsers(dest="action", required=True)
    pub = csub.add_parser("publish", help="ingest values into a stream")
    pub.add_argument("--stream", required=True, help="stream id")
    pub.add_argument(
        "--values", required=True,
        help="comma-separated raw values (one window or more)",
    )
    query = csub.add_parser("query", help="post a similarity query and wait")
    query.add_argument(
        "--pattern", required=True,
        help="comma-separated pattern (exactly one window long)",
    )
    query.add_argument("--radius", type=float, default=0.2)
    query.add_argument("--lifespan", type=float, default=60_000.0, help="ms")
    query.add_argument(
        "--wait", type=float, default=5.0,
        help="seconds to poll for results before printing them",
    )
    csub.add_parser("status", help="membership, held index entries, streams")

    return parser


def _sweep(args) -> SweepCache:
    config = MiddlewareConfig(batch_size=args.batch)
    return SweepCache(
        config=config,
        seed=args.seed,
        measure_ms=args.measure * 1000.0,
        warmup_extra_ms=3_000.0,
    )


def cmd_table1(_args, out) -> int:
    print(
        format_table(
            "Table I: parameters used in different experiments",
            ["parameter", "value"],
            [list(r) for r in TABLE_I.as_table()],
        ),
        file=out,
    )
    return 0


def cmd_demo(args, out) -> int:
    from .core.queries import SimilarityQuery
    from .core.system import StreamIndexSystem

    system = StreamIndexSystem(args.nodes, seed=args.seed)
    system.attach_random_walk_streams()
    system.warmup()
    donor_app = system.app(min(3, args.nodes - 1))
    donor = next(iter(donor_app.sources.values()))
    client = system.app(0)
    qid = client.post_similarity_query(
        SimilarityQuery(
            pattern=donor.extractor.window.values(),
            radius=args.radius,
            lifespan_ms=args.duration * 1000.0 + 5_000.0,
        )
    )
    system.run(args.duration * 1000.0)
    matches = client.similarity_results[qid]
    print(
        f"{args.nodes} nodes, radius {args.radius}: "
        f"{len(matches)} matching stream(s)",
        file=out,
    )
    for m in sorted(matches, key=lambda m: m.distance_bound):
        print(f"  {m.stream_id:<12} distance <= {m.distance_bound:.4f}", file=out)
    stats = system.network.stats
    print(
        f"messages: {sum(stats.sends_by_kind.values())}, "
        f"mean response latency {stats.mean_latency('response'):.0f} ms",
        file=out,
    )
    return 0


def cmd_load(args, out) -> int:
    sweep = _sweep(args)
    series = sweep.load_series(args.nodes, radius=args.radius)
    print(
        format_series(
            "Fig. 6(a): average load of messages on a node (per second)",
            "N",
            args.nodes,
            series,
        ),
        file=out,
    )
    return 0


def cmd_overhead(args, out) -> int:
    sweep = _sweep(args)
    series = sweep.overhead_series(args.nodes, radius=args.radius)
    print(
        format_series(
            f"Fig. 7: message overhead per input event (radius {args.radius})",
            "N",
            args.nodes,
            series,
        ),
        file=out,
    )
    return 0


def cmd_hops(args, out) -> int:
    sweep = _sweep(args)
    series = sweep.hop_series(args.nodes, radius=args.radius)
    print(
        format_series(
            "Fig. 8: average number of hops traversed by a request",
            "N",
            args.nodes,
            series,
        ),
        file=out,
    )
    return 0


def cmd_distribution(args, out) -> int:
    config = MiddlewareConfig(batch_size=args.batch)
    sweep = SweepCache(
        config=config,
        seed=args.seed,
        measure_ms=args.measure * 1000.0,
        warmup_extra_ms=3_000.0,
    )
    run = sweep.run(args.nodes)
    dist = run.metrics.load_distribution()
    counts, edges = np.histogram(dist, bins=8)
    print(
        format_histogram(
            f"Fig. 6(b): load across nodes (N={args.nodes}, msgs/s)", counts, edges
        ),
        file=out,
    )
    print(
        f"mean={dist.mean():.2f}  p95={np.percentile(dist, 95):.2f}  "
        f"max={dist.max():.2f}",
        file=out,
    )
    return 0


def cmd_baselines(args, out) -> int:
    from .baselines import CentralizedIndexSystem, FloodingIndexSystem
    from .core.queries import SimilarityQuery

    rows = []
    config = MiddlewareConfig(batch_size=1)
    sweep = SweepCache(
        config=config, seed=args.seed, measure_ms=args.measure * 1000.0,
        warmup_extra_ms=3_000.0,
    )
    dist_run = sweep.run(args.nodes)
    dist_loads = dist_run.metrics.load_distribution()
    rows.append(
        ["distributed", float(dist_loads.mean()), float(dist_loads.max())]
    )
    for label, cls in (
        ("centralized", CentralizedIndexSystem),
        ("flooding", FloodingIndexSystem),
    ):
        system = cls(args.nodes, config, seed=args.seed)
        system.attach_random_walk_streams()
        system.warmup()
        system.reset_stats()
        rng = system.rngs.get("cli-queries")
        for _ in range(5):
            donor = system.app(int(rng.integers(args.nodes)))
            src = next(iter(donor.sources.values()))
            if src.extractor.ready:
                system.post_similarity_query(
                    system.app(int(rng.integers(args.nodes))),
                    SimilarityQuery(
                        pattern=src.extractor.window.values(),
                        radius=0.1,
                        lifespan_ms=8_000.0,
                    ),
                )
        system.run(args.measure * 1000.0)
        loads = np.array(
            sorted(system.network.stats.load_by_node().values())
        ) / args.measure
        rows.append([label, float(loads.mean()), float(loads.max())])
    print(
        format_table(
            f"Sec. IV-A baselines (N={args.nodes}): per-node load (msgs/s)",
            ["architecture", "mean", "max (hottest node)"],
            rows,
        ),
        file=out,
    )
    return 0


def cmd_lossy(args, out) -> int:
    from .core.queries import SimilarityQuery
    from .core.system import StreamIndexSystem
    from .workload import ChurnWorkload

    config = MiddlewareConfig(
        window_size=64,
        batch_size=2,
        reliable_delivery=True,
        refresh_period_ms=args.refresh * 1000.0,
        loss_rate=args.loss,
        duplicate_rate=args.duplicate,
        replication_factor=args.replication,
        consistency=args.consistency,
        virtual_nodes=args.vnodes,
        adaptive_mapping=args.adaptive,
        admission_control=args.shed > 0,
        admission_rate_per_s=args.shed if args.shed > 0 else 20.0,
        workload=WorkloadConfig(qrate_per_s=0.0),
    )
    system = StreamIndexSystem(
        args.nodes, config, seed=args.seed, with_stabilizer=True
    )
    system.attach_random_walk_streams()
    system.warmup()

    client = system.app(0)
    donor_app = system.app(min(4, args.nodes - 1))
    donor = next(iter(donor_app.sources.values()))
    churn = None
    if args.churn > 0:
        churn = ChurnWorkload(
            system,
            fail_rate_per_s=args.churn,
            join_rate_per_s=args.churn,
            protect=[client.node_id, donor_app.node_id],
        ).start()

    system.reset_stats()
    qid = client.post_similarity_query(
        SimilarityQuery(
            pattern=donor.extractor.window.values(),
            radius=args.radius,
            lifespan_ms=args.duration * 1000.0 + 5_000.0,
        )
    )
    system.run(args.duration * 1000.0)
    if churn is not None:
        churn.stop()

    stats = system.network.stats
    matches = client.similarity_results[qid]
    rows = [
        ["availability (acked/attempted)", f"{stats.delivery_ratio():.4f}"],
        [
            "eventual delivery (settled sends)",
            f"{system.eventual_delivery_ratio():.4f}",
        ],
        ["reliable sends", sum(stats.reliable_sends.values())],
        ["retransmissions", sum(stats.retransmissions.values())],
        ["dead letters", sum(stats.dead_letters.values())],
        ["duplicates suppressed", sum(stats.duplicates_suppressed.values())],
        ["matching streams", len(matches)],
    ]
    for reason, count in sorted(stats.drops_by_reason().items()):
        rows.append([f"drops [{reason}]", count])
    if churn is not None:
        rows.append(["failures / joins", f"{churn.failures} / {churn.joins}"])
    if args.vnodes > 1:
        rows.extend(
            [
                ["tokens / physical nodes", (
                    f"{len(system.ring)} / {system.n_physical}"
                )],
                ["load skew (max/mean, physical)", (
                    f"{system.load_skew_ratio():.3f}"
                )],
            ]
        )
    if args.adaptive:
        rows.extend(
            [
                ["mapping epoch", system.mapper.epoch],
                ["MBRs migrated", sum(stats.mbrs_migrated.values())],
            ]
        )
    if args.shed > 0:
        rows.extend(
            [
                ["publishes shed", sum(stats.publishes_shed.values())],
                ["backpressure advisories", sum(
                    stats.backpressure_signals.values()
                )],
                ["source throttles", sum(stats.source_throttles.values())],
            ]
        )
    if args.replication > 1:
        rows.extend(
            [
                ["replica pushes", sum(
                    v for (k, v) in stats.sends_by_kind.items() if k == "replica"
                )],
                ["replica copies held", system.replica_count()],
                ["replica divergence", f"{system.replica_divergence():.4f}"],
                ["handoffs enqueued / drained", (
                    f"{sum(stats.handoffs_enqueued.values())} / "
                    f"{sum(stats.handoffs_drained.values())}"
                )],
                ["handoff backlog", system.handoff_backlog()],
                ["read repairs", sum(stats.read_repairs.values())],
            ]
        )
    print(
        format_table(
            f"Lossy network (N={args.nodes}, loss={args.loss}, "
            f"dup={args.duplicate}, churn={args.churn}/s, "
            f"r={args.replication}/{args.consistency}, "
            f"v={args.vnodes}, "
            f"{args.duration:.0f}s)",
            ["metric", "value"],
            rows,
        ),
        file=out,
    )
    if getattr(args, "check_invariants", False):
        return _settle_and_check(system, out)
    return 0


def _settle_and_check(system, out) -> int:
    """Stabilize, let churn-era soft state expire, then sweep invariants.

    MBRs published while the ring was churning may sit on nodes that are
    no longer their owners; that is expected soft-state staleness, healed
    by BSPAN expiry plus refresh.  So: converge the ring first, then run
    one lifespan (plus slack) of simulated time so the stale entries
    expire while fresh publishes land on the exact ring — after which
    every invariant must hold.
    """
    from .analysis import check_invariants

    if system.stabilizer is not None:
        try:
            rounds = system.stabilizer.stabilize_until_converged()
            print(f"ring converged in {rounds} stabilization round(s)", file=out)
        except RuntimeError as exc:
            print(f"invariants FAILED: {exc}", file=out)
            return 1
    system.run(system.config.workload.bspan_ms + 1_000.0)
    report = check_invariants(system)
    print(report.summary(), file=out)
    return 0 if report.ok else 1


def cmd_bench(args, out) -> int:
    from .perf.harness import DEFAULT_REPORT_PATH, SPEEDUP_REF_PATH, run_bench

    return run_bench(
        output=args.output if args.output is not None else DEFAULT_REPORT_PATH,
        quick=args.quick,
        only=args.only,
        check=args.check,
        max_regression=args.max_regression,
        speedup_ref=(
            args.speedup_ref if args.speedup_ref is not None else SPEEDUP_REF_PATH
        ),
        jobs=args.jobs,
        out=out,
    )


def cmd_shard(args, out) -> int:
    from .perf.shards import run_shard_suite

    return run_shard_suite(
        scenarios=args.scenario,
        jobs=args.jobs,
        quick=args.quick,
        check=args.check,
        output=args.output,
        echo=lambda msg: print(msg, file=out),
    )


def cmd_sweep(args, out) -> int:
    from .perf.parallel import DEFAULT_SWEEP_PATH, run_sweep

    return run_sweep(
        jobs=args.jobs,
        quick=args.quick,
        seed=args.seed,
        output=args.output if args.output is not None else DEFAULT_SWEEP_PATH,
        check=args.check,
        out=out,
    )


def cmd_lint(args, out) -> int:
    from .analysis import (
        format_finding,
        lint_paths,
        load_baseline,
        split_baselined,
        stale_entries,
        write_baseline,
    )

    findings = lint_paths(args.paths)
    if args.write_baseline:
        write_baseline(findings, args.baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}", file=out
        )
        return 0
    baseline = load_baseline(args.baseline)
    if args.prune_baseline:
        stale = stale_entries(findings, baseline)
        if not stale:
            print(
                f"simlint: baseline {args.baseline} is tight "
                f"({sum(baseline.values())} entr(ies), none stale)",
                file=out,
            )
            return 0
        if args.write:
            _, grandfathered = split_baselined(findings, baseline)
            write_baseline(grandfathered, args.baseline)
            print(
                f"simlint: pruned {len(stale)} stale entr(ies) from "
                f"{args.baseline} ({len(grandfathered)} kept)",
                file=out,
            )
            return 0
        for entry in stale:
            print(f"stale: {entry}", file=out)
        print(
            f"simlint: {len(stale)} baseline entr(ies) no longer "
            f"emitted — rerun with --prune-baseline --write",
            file=out,
        )
        return 1
    fresh, grandfathered = split_baselined(findings, baseline)
    for finding in fresh:
        print(format_finding(finding), file=out)
    suffix = f" ({len(grandfathered)} baselined)" if grandfathered else ""
    if fresh:
        print(f"simlint: {len(fresh)} finding(s){suffix}", file=out)
        return 1
    print(f"simlint: clean{suffix}", file=out)
    return 0


def protocol_registry_dump() -> list:
    """The payload registry as JSON-able rows (declaration order).

    The machine-readable twin of the ``repro protocol`` table: one row
    per payload with its class name, accounting kind, dataclass field
    names in wire order, and delivery/flow metadata.  ``net/wire.py``
    derives its codec table from the same registry, and a test pins the
    two against each other, so this dump doubles as the wire-schema pin.
    """
    import dataclasses as _dc

    from .core.protocol import registry_items
    from .core.runtime import DEFAULT_SERVICES

    handler_of = {}
    for service_cls in DEFAULT_SERVICES:
        for payload_type, method_name in service_cls.handlers():
            handler_of[payload_type] = (
                service_cls.role,
                f"{service_cls.__name__}.{method_name}",
            )
    rows = []
    for payload_type, spec in registry_items():
        role, handler = handler_of.get(
            payload_type, ("(runtime)", "NodeRuntime.deliver")
        )
        rows.append(
            {
                "payload": payload_type.__name__,
                "kind": spec.kind,
                "fields": [f.name for f in _dc.fields(payload_type)],
                "dedup": spec.dedup,
                "ack_on_delivery": spec.ack_on_delivery,
                "ack_kinds": sorted(spec.ack_kinds),
                "senders": sorted(spec.senders),
                "response": spec.response,
                "flow": spec.flow,
                "role": role,
                "handler": handler,
            }
        )
    return rows


def cmd_protocol(args, out) -> int:
    """Render the protocol registry and role dispatch as one table.

    Generated from the live registry, so it cannot drift from the code:
    the same metadata drives runtime dedup/ack policy, the delivery
    invariant checker, simlint D007 and the net/wire.py codec table.
    """
    from .core.protocol import registry_items
    from .core.runtime import DEFAULT_SERVICES

    if getattr(args, "json", False):
        import json as _json

        from .net.wire import WIRE_VERSION

        print(
            _json.dumps(
                {"wire_version": WIRE_VERSION, "payloads": protocol_registry_dump()},
                indent=2,
            ),
            file=out,
        )
        return 0

    handler_of = {}
    for service_cls in DEFAULT_SERVICES:
        for payload_type, method_name in service_cls.handlers():
            handler_of[payload_type] = (
                service_cls.role,
                f"{service_cls.__name__}.{method_name}",
            )
    rows = []
    for payload_type, spec in registry_items():
        role, handler = handler_of.get(payload_type, ("(runtime)", "NodeRuntime.deliver"))
        rows.append(
            [
                payload_type.__name__,
                spec.kind,
                "yes" if spec.dedup else "no",
                ",".join(sorted(spec.ack_kinds)) if spec.ack_kinds else "-",
                ",".join(sorted(spec.senders)) if spec.senders else "-",
                role,
                handler,
            ]
        )
    print(
        format_table(
            "Protocol registry: payload delivery policy and role dispatch",
            ["payload", "kind", "dedup", "ack on kinds", "senders", "role", "handler"],
            rows,
        ),
        file=out,
    )
    return 0


def cmd_flow(args, out) -> int:
    """simflow: static protocol-flow table, DOT export and F checks."""
    from pathlib import Path as _Path

    from .analysis import (
        analyze_flow,
        format_finding,
        load_baseline,
        render_flow_table,
        split_baselined,
        write_baseline,
    )

    graph, findings = analyze_flow(args.paths)
    print(render_flow_table(graph), file=out)
    print(
        f"\nflow graph: {len(graph.payloads)} payload type(s), "
        f"{len(graph.sends)} send site(s), "
        f"{len(graph.handlers)} handler(s)",
        file=out,
    )
    if args.dot:
        _Path(args.dot).write_text(graph.to_dot())
        print(f"wrote flow graph to {args.dot}", file=out)
    if args.write_baseline:
        write_baseline(findings, args.baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}", file=out
        )
        return 0
    fresh, grandfathered = split_baselined(
        findings, load_baseline(args.baseline)
    )
    for finding in fresh:
        print(format_finding(finding), file=out)
    suffix = f" ({len(grandfathered)} baselined)" if grandfathered else ""
    if fresh:
        print(f"simflow: {len(fresh)} finding(s){suffix}", file=out)
        return 1 if args.check else 0
    print(f"simflow: clean{suffix}", file=out)
    return 0


def cmd_ring_stats(args, out) -> int:
    from .chord import ChordRing, RingAnalyzer

    ring = ChordRing(m=args.m)
    for i in range(args.nodes):
        ring.create_node(f"dc-{i}")
    ring.build()
    analyzer = RingAnalyzer(ring)
    arcs = analyzer.arc_stats()
    fingers = analyzer.finger_health()
    paths = analyzer.path_profile(samples=args.samples)
    rows = [
        ["nodes", arcs.n_nodes],
        ["arc mean", arcs.mean],
        ["arc max/mean", arcs.max_over_mean],
        ["finger accuracy", fingers.accuracy],
        ["lookup hops mean", paths.mean],
        ["lookup hops p95", paths.p95],
        ["lookup hops max", paths.maximum],
        ["0.5*log2(N)", 0.5 * float(np.log2(max(2, args.nodes)))],
    ]
    print(
        format_table(f"Chord ring diagnostics (N={args.nodes}, m={args.m})",
                     ["metric", "value"], rows),
        file=out,
    )
    return 0


def cmd_node(args, out) -> int:
    """Boot one peer process (blocks until SIGINT/SIGTERM)."""
    del out  # the peer logs to stderr; stdout stays clean
    from .net.peer import parse_addr, run_node

    name = args.name
    if name is None:
        name = f"dc-{parse_addr(args.listen)[1]}"
    config = MiddlewareConfig(
        m=args.m,
        window_size=args.window,
        batch_size=args.batch,
        k=args.k,
        hop_delay_ms=0.0,
        workload=WorkloadConfig(qrate_per_s=0.0, nper_ms=args.nper),
    )
    return run_node(
        args.listen, join=args.join, name=name, config=config, seed=args.seed
    )


def cmd_client(args, out) -> int:
    """One-shot RPCs against a running peer; prints the reply as JSON."""
    import json as _json
    import time as _time

    from .net.peer import request

    def rpc(obj):
        return request(args.connect, obj, timeout=args.timeout)

    if args.action == "publish":
        values = [float(v) for v in args.values.split(",") if v.strip()]
        reply = rpc({"t": "publish", "stream_id": args.stream, "values": values})
    elif args.action == "query":
        pattern = [float(v) for v in args.pattern.split(",") if v.strip()]
        reply = rpc(
            {
                "t": "query",
                "pattern": pattern,
                "radius": args.radius,
                "lifespan_ms": args.lifespan,
            }
        )
        if reply.get("t") == "ok":
            qid = reply["query_id"]
            deadline = _time.monotonic() + args.wait
            reply = {"t": "results", "query_id": qid, "matches": []}
            while _time.monotonic() < deadline:
                reply = rpc({"t": "results", "query_id": qid})
                if reply.get("matches"):
                    break
                _time.sleep(0.25)
    else:  # status
        reply = rpc({"t": "status"})
    print(_json.dumps(reply, indent=2), file=out)
    return 0 if reply.get("t") != "error" else 1


_COMMANDS = {
    "table1": cmd_table1,
    "demo": cmd_demo,
    "load": cmd_load,
    "overhead": cmd_overhead,
    "hops": cmd_hops,
    "distribution": cmd_distribution,
    "baselines": cmd_baselines,
    "lossy": cmd_lossy,
    "bench": cmd_bench,
    "shard": cmd_shard,
    "sweep": cmd_sweep,
    "lint": cmd_lint,
    "protocol": cmd_protocol,
    "flow": cmd_flow,
    "ring-stats": cmd_ring_stats,
    "node": cmd_node,
    "client": cmd_client,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        # Downstream consumer (e.g. `head`) closed the pipe: not an error.
        try:
            sys.stderr.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
