"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable (``python setup.py develop`` /
``pip install -e .``) on environments whose setuptools predates full
PEP 660 support.
"""

from setuptools import setup

setup()
